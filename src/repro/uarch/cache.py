"""Set-associative cache model with LRU replacement and write-back support.

The model is trace-driven and line-granular: callers pass global line
identifiers (``byte_address // line_bytes``).  It tracks the per-type
access/miss/writeback counters the PMU and gem5 both expose, supports
write-streaming detection (a Cortex-A15 feature whose absence from the gem5
model explains the paper's 9.9x ``L1D_CACHE_REFILL_WR`` and 19x
``L1D_CACHE_WB`` over-counts), and hosts an optional stride prefetcher (the
gem5 model's over-aggressive L2 prefetching is another Fig. 6 divergence).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class CacheStats:
    """Counter block for one cache instance."""

    read_accesses: int = 0
    write_accesses: int = 0
    read_misses: int = 0
    write_misses: int = 0
    write_refills: int = 0  # write misses that allocated (0x43 semantics)
    writebacks: int = 0
    replacements: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0
    streaming_stores: int = 0

    @property
    def accesses(self) -> int:
        return self.read_accesses + self.write_accesses

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat dict of all counters plus derived totals."""
        return {
            "read_accesses": self.read_accesses,
            "write_accesses": self.write_accesses,
            "read_misses": self.read_misses,
            "write_misses": self.write_misses,
            "write_refills": self.write_refills,
            "writebacks": self.writebacks,
            "replacements": self.replacements,
            "prefetches_issued": self.prefetches_issued,
            "prefetch_hits": self.prefetch_hits,
            "streaming_stores": self.streaming_stores,
            "accesses": self.accesses,
            "misses": self.misses,
            "hits": self.hits,
        }


class SetAssociativeCache:
    """A set-associative, LRU, write-back/write-allocate cache.

    Args:
        name: Label used in diagnostics.
        size_bytes: Total capacity.
        line_bytes: Line size (64 B throughout this reproduction).
        assoc: Associativity; capped at the number of lines.
        write_allocate: Allocate lines on write misses.  With
            ``write_streaming`` enabled, sequential store streams bypass
            allocation after a short training period, like the Cortex-A15.
        write_streaming: Enable streaming-store detection.

    The cache is deliberately dictionary-free in the hot path: each set is a
    plain list ordered MRU-first, and dirty lines live in a per-set set().
    """

    STREAM_TRAIN = 4  # consecutive-line store misses before streaming mode

    def __init__(
        self,
        name: str,
        size_bytes: int,
        line_bytes: int = 64,
        assoc: int = 4,
        write_allocate: bool = True,
        write_streaming: bool = False,
    ):
        if size_bytes <= 0 or line_bytes <= 0:
            raise ValueError("cache size and line size must be positive")
        n_lines = max(1, size_bytes // line_bytes)
        assoc = max(1, min(assoc, n_lines))
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.n_sets = max(1, n_lines // assoc)
        self.write_allocate = write_allocate
        self.write_streaming = write_streaming
        self.stats = CacheStats()
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self._dirty: list[set[int]] = [set() for _ in range(self.n_sets)]
        # Streaming-store trackers: (last_line, run_length) per concurrent
        # store stream, like the A15's multiple fill/streaming buffers.
        self._stream_trackers: list[list[int]] = []
        self._stream_victim = 0

    def reset(self) -> None:
        """Clear contents and counters."""
        self._sets = [[] for _ in range(self.n_sets)]
        self._dirty = [set() for _ in range(self.n_sets)]
        self.stats = CacheStats()
        self._stream_trackers = []
        self._stream_victim = 0

    N_STREAM_TRACKERS = 8

    def _stream_check(self, line: int) -> bool:
        """Train the streaming detectors on a store miss; True = streaming."""
        for tracker in self._stream_trackers:
            if line == tracker[0] + 1:
                tracker[0] = line
                tracker[1] += 1
                return tracker[1] >= self.STREAM_TRAIN
            if line == tracker[0]:
                return tracker[1] >= self.STREAM_TRAIN
        if len(self._stream_trackers) < self.N_STREAM_TRACKERS:
            self._stream_trackers.append([line, 0])
        else:
            self._stream_trackers[self._stream_victim] = [line, 0]
            self._stream_victim = (self._stream_victim + 1) % self.N_STREAM_TRACKERS
        return False

    def _lookup(self, line: int) -> tuple[int, int, bool]:
        set_index = line % self.n_sets
        tag = line // self.n_sets
        return set_index, tag, tag in self._sets[set_index]

    def contains(self, line: int) -> bool:
        """Non-mutating presence check (no counter updates, no LRU touch)."""
        _, _, hit = self._lookup(line)
        return hit

    def _touch(self, set_index: int, tag: int) -> None:
        ways = self._sets[set_index]
        ways.remove(tag)
        ways.insert(0, tag)

    def _fill(self, set_index: int, tag: int, dirty: bool) -> bool:
        """Insert a line; returns True when a dirty victim was written back."""
        ways = self._sets[set_index]
        ways.insert(0, tag)
        wrote_back = False
        if len(ways) > self.assoc:
            victim = ways.pop()
            self.stats.replacements += 1
            if victim in self._dirty[set_index]:
                self._dirty[set_index].discard(victim)
                self.stats.writebacks += 1
                wrote_back = True
        if dirty:
            self._dirty[set_index].add(tag)
        return wrote_back

    def access(self, line: int, is_write: bool = False) -> tuple[bool, bool, bool]:
        """Access one line.

        Returns:
            ``(hit, writeback, allocated)`` — whether the access hit, whether
            a dirty victim was evicted, and whether a line was allocated
            (False for streaming stores that bypass the cache).
        """
        stats = self.stats
        # _lookup/_touch inlined: access() is the simulator's hottest call.
        set_index = line % self.n_sets
        tag = line // self.n_sets
        ways = self._sets[set_index]
        if is_write:
            stats.write_accesses += 1
        else:
            stats.read_accesses += 1

        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            if is_write:
                self._dirty[set_index].add(tag)
            return True, False, False

        if is_write:
            stats.write_misses += 1
            if self.write_streaming:
                if self._stream_check(line):
                    # Streaming mode: write around the cache, no allocation,
                    # no future writeback for this line.
                    stats.streaming_stores += 1
                    return False, False, False
            if not self.write_allocate:
                return False, False, False
            stats.write_refills += 1
            wrote_back = self._fill(set_index, tag, dirty=True)
            return False, wrote_back, True

        stats.read_misses += 1
        wrote_back = self._fill(set_index, tag, dirty=False)
        return False, wrote_back, True

    def fill(self, line: int) -> None:
        """Insert a line without touching any counters (cache pre-warming).

        Silent eviction: no writeback or replacement accounting.  Used to
        establish steady-state residency before measurement starts, the
        trace-driven equivalent of a real workload's warm-up phase.
        """
        set_index, tag, hit = self._lookup(line)
        if hit:
            self._touch(set_index, tag)
            return
        ways = self._sets[set_index]
        ways.insert(0, tag)
        if len(ways) > self.assoc:
            victim = ways.pop()
            self._dirty[set_index].discard(victim)

    def warm_fill_many(self, lines) -> None:
        """Bulk :meth:`fill`: bit-identical final state to filling in a loop.

        ``fill`` is counter-silent, so only the final LRU state matters: a
        set that saw fills ``t1..tk`` ends up holding the most recently
        filled distinct tags, MRU-first, truncated to the associativity —
        with any pre-existing residents ranked older than every new fill.
        That closed form is computed here in one vectorised pass instead of
        one Python call per line, which is what makes large pre-warm
        footprints (two L2 capacities per data stream) cheap.

        The closed form is only exact while the cache is clean: sequential
        ``fill`` silently drops an evicted line's dirty bit even when a
        later fill re-inserts the line, an ordering this summary cannot
        see.  Dirty caches therefore take the sequential path.
        """
        if any(self._dirty):
            fill = self.fill
            for line in lines:
                fill(line)
            return
        arr = np.asarray(lines, dtype=np.int64)
        if arr.size == 0:
            return
        # Distinct lines by most recent fill: np.unique on the reversed
        # sequence keeps each line's *last* occurrence, and re-sorting the
        # surviving positions restores recency order (most recent first).
        rev = arr[::-1]
        _, keep = np.unique(rev, return_index=True)
        keep.sort()
        mru_lines = rev[keep]
        n_sets = self.n_sets
        set_idx = mru_lines % n_sets
        order = np.argsort(set_idx, kind="stable")
        sorted_sets = set_idx[order]
        bounds = np.flatnonzero(sorted_sets[1:] != sorted_sets[:-1]) + 1
        starts = [0, *bounds.tolist(), order.size]
        assoc = self.assoc
        sets = self._sets
        for i in range(len(starts) - 1):
            seg = order[starts[i] : starts[i + 1]]
            s = int(set_idx[seg[0]])
            fresh = (mru_lines[seg] // n_sets).tolist()
            ways = sets[s]
            if ways:
                fresh_tags = set(fresh)
                fresh += [tag for tag in ways if tag not in fresh_tags]
            del fresh[assoc:]
            sets[s] = fresh

    def prefetch(self, line: int) -> bool:
        """Insert a line speculatively; returns True if it was absent."""
        set_index, tag, hit = self._lookup(line)
        self.stats.prefetches_issued += 1
        if hit:
            return False
        self._fill(set_index, tag, dirty=False)
        return True


class StridePrefetcher:
    """A degree-N stride prefetcher attached to one cache level.

    Tracks the delta between successive demand-miss lines; after two
    repeats of the same delta it issues ``degree`` prefetches ahead.  The
    gem5 ex5_big configuration is reproduced with a high degree, the
    hardware reference with a conservative one — the source of the paper's
    "L2 prefetches significantly overestimated" observation.
    """

    def __init__(self, cache: SetAssociativeCache, degree: int = 1):
        if degree < 0:
            raise ValueError("degree must be non-negative")
        self.cache = cache
        self.degree = degree
        self._last_line = -1
        self._last_delta = 0
        self._confidence = 0

    def train(self, line: int) -> int:
        """Observe a demand miss; returns the number of prefetches issued."""
        if self.degree == 0:
            return 0
        delta = line - self._last_line
        if delta == self._last_delta and delta != 0:
            self._confidence = min(self._confidence + 1, 4)
        else:
            self._confidence = 0
            self._last_delta = delta
        self._last_line = line
        issued = 0
        if self._confidence >= 2:
            for i in range(1, self.degree + 1):
                if self.cache.prefetch(line + self._last_delta * i):
                    issued += 1
        return issued
