"""Set-associative cache model with LRU replacement and write-back support.

The model is trace-driven and line-granular: callers pass global line
identifiers (``byte_address // line_bytes``).  It tracks the per-type
access/miss/writeback counters the PMU and gem5 both expose, supports
write-streaming detection (a Cortex-A15 feature whose absence from the gem5
model explains the paper's 9.9x ``L1D_CACHE_REFILL_WR`` and 19x
``L1D_CACHE_WB`` over-counts), and hosts an optional stride prefetcher (the
gem5 model's over-aggressive L2 prefetching is another Fig. 6 divergence).
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np


@dataclass
class CacheStats:
    """Counter block for one cache instance."""

    read_accesses: int = 0
    write_accesses: int = 0
    read_misses: int = 0
    write_misses: int = 0
    write_refills: int = 0  # write misses that allocated (0x43 semantics)
    writebacks: int = 0
    replacements: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0
    streaming_stores: int = 0

    @property
    def accesses(self) -> int:
        return self.read_accesses + self.write_accesses

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat dict of all counters plus derived totals."""
        return {
            "read_accesses": self.read_accesses,
            "write_accesses": self.write_accesses,
            "read_misses": self.read_misses,
            "write_misses": self.write_misses,
            "write_refills": self.write_refills,
            "writebacks": self.writebacks,
            "replacements": self.replacements,
            "prefetches_issued": self.prefetches_issued,
            "prefetch_hits": self.prefetch_hits,
            "streaming_stores": self.streaming_stores,
            "accesses": self.accesses,
            "misses": self.misses,
            "hits": self.hits,
        }


class SetAssociativeCache:
    """A set-associative, LRU, write-back/write-allocate cache.

    Args:
        name: Label used in diagnostics.
        size_bytes: Total capacity.
        line_bytes: Line size (64 B throughout this reproduction).
        assoc: Associativity; capped at the number of lines.
        write_allocate: Allocate lines on write misses.  With
            ``write_streaming`` enabled, sequential store streams bypass
            allocation after a short training period, like the Cortex-A15.
        write_streaming: Enable streaming-store detection.

    The cache is deliberately dictionary-free in the hot path: each set is a
    plain list ordered MRU-first, and dirty lines live in a per-set set().
    """

    STREAM_TRAIN = 4  # consecutive-line store misses before streaming mode

    def __init__(
        self,
        name: str,
        size_bytes: int,
        line_bytes: int = 64,
        assoc: int = 4,
        write_allocate: bool = True,
        write_streaming: bool = False,
    ):
        if size_bytes <= 0 or line_bytes <= 0:
            raise ValueError("cache size and line size must be positive")
        n_lines = max(1, size_bytes // line_bytes)
        assoc = max(1, min(assoc, n_lines))
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.n_sets = max(1, n_lines // assoc)
        self.write_allocate = write_allocate
        self.write_streaming = write_streaming
        self.stats = CacheStats()
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self._dirty: list[set[int]] = [set() for _ in range(self.n_sets)]
        # Streaming-store trackers: (last_line, run_length) per concurrent
        # store stream, like the A15's multiple fill/streaming buffers.
        self._stream_trackers: list[list[int]] = []
        self._stream_victim = 0

    def reset(self) -> None:
        """Clear contents and counters."""
        # Clear in place: rebuilding thousands of per-set lists dominates
        # reset cost on large L2s, and after a columnar run they are
        # usually still empty.
        for s in self._sets:
            if s:
                s.clear()
        for d in self._dirty:
            if d:
                d.clear()
        self.stats = CacheStats()
        self._stream_trackers = []
        self._stream_victim = 0

    N_STREAM_TRACKERS = 8

    def _stream_check(self, line: int) -> bool:
        """Train the streaming detectors on a store miss; True = streaming."""
        for tracker in self._stream_trackers:
            if line == tracker[0] + 1:
                tracker[0] = line
                tracker[1] += 1
                return tracker[1] >= self.STREAM_TRAIN
            if line == tracker[0]:
                return tracker[1] >= self.STREAM_TRAIN
        if len(self._stream_trackers) < self.N_STREAM_TRACKERS:
            self._stream_trackers.append([line, 0])
        else:
            self._stream_trackers[self._stream_victim] = [line, 0]
            self._stream_victim = (self._stream_victim + 1) % self.N_STREAM_TRACKERS
        return False

    def _lookup(self, line: int) -> tuple[int, int, bool]:
        set_index = line % self.n_sets
        tag = line // self.n_sets
        return set_index, tag, tag in self._sets[set_index]

    def contains(self, line: int) -> bool:
        """Non-mutating presence check (no counter updates, no LRU touch)."""
        _, _, hit = self._lookup(line)
        return hit

    def _touch(self, set_index: int, tag: int) -> None:
        ways = self._sets[set_index]
        ways.remove(tag)
        ways.insert(0, tag)

    def _fill(self, set_index: int, tag: int, dirty: bool) -> bool:
        """Insert a line; returns True when a dirty victim was written back."""
        ways = self._sets[set_index]
        ways.insert(0, tag)
        wrote_back = False
        if len(ways) > self.assoc:
            victim = ways.pop()
            self.stats.replacements += 1
            if victim in self._dirty[set_index]:
                self._dirty[set_index].discard(victim)
                self.stats.writebacks += 1
                wrote_back = True
        if dirty:
            self._dirty[set_index].add(tag)
        return wrote_back

    def access(self, line: int, is_write: bool = False) -> tuple[bool, bool, bool]:
        """Access one line.

        Returns:
            ``(hit, writeback, allocated)`` — whether the access hit, whether
            a dirty victim was evicted, and whether a line was allocated
            (False for streaming stores that bypass the cache).
        """
        stats = self.stats
        # _lookup/_touch inlined: access() is the simulator's hottest call.
        set_index = line % self.n_sets
        tag = line // self.n_sets
        ways = self._sets[set_index]
        if is_write:
            stats.write_accesses += 1
        else:
            stats.read_accesses += 1

        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            if is_write:
                self._dirty[set_index].add(tag)
            return True, False, False

        if is_write:
            stats.write_misses += 1
            if self.write_streaming:
                if self._stream_check(line):
                    # Streaming mode: write around the cache, no allocation,
                    # no future writeback for this line.
                    stats.streaming_stores += 1
                    return False, False, False
            if not self.write_allocate:
                return False, False, False
            stats.write_refills += 1
            wrote_back = self._fill(set_index, tag, dirty=True)
            return False, wrote_back, True

        stats.read_misses += 1
        wrote_back = self._fill(set_index, tag, dirty=False)
        return False, wrote_back, True

    def fill(self, line: int) -> None:
        """Insert a line without touching any counters (cache pre-warming).

        Silent eviction: no writeback or replacement accounting.  Used to
        establish steady-state residency before measurement starts, the
        trace-driven equivalent of a real workload's warm-up phase.
        """
        set_index, tag, hit = self._lookup(line)
        if hit:
            self._touch(set_index, tag)
            return
        ways = self._sets[set_index]
        ways.insert(0, tag)
        if len(ways) > self.assoc:
            victim = ways.pop()
            self._dirty[set_index].discard(victim)

    def warm_fill_many(self, lines) -> None:
        """Bulk :meth:`fill`: bit-identical final state to filling in a loop.

        ``fill`` is counter-silent, so only the final LRU state matters: a
        set that saw fills ``t1..tk`` ends up holding the most recently
        filled distinct tags, MRU-first, truncated to the associativity —
        with any pre-existing residents ranked older than every new fill.
        That closed form is computed here in one vectorised pass instead of
        one Python call per line, which is what makes large pre-warm
        footprints (two L2 capacities per data stream) cheap.

        The closed form is only exact while the cache is clean: sequential
        ``fill`` silently drops an evicted line's dirty bit even when a
        later fill re-inserts the line, an ordering this summary cannot
        see.  Dirty caches therefore take the sequential path.
        """
        if any(self._dirty):
            fill = self.fill
            for line in lines:
                fill(line)
            return
        arr = np.asarray(lines, dtype=np.int64)
        if arr.size == 0:
            return
        # Distinct lines by most recent fill: np.unique on the reversed
        # sequence keeps each line's *last* occurrence, and re-sorting the
        # surviving positions restores recency order (most recent first).
        rev = arr[::-1]
        _, keep = np.unique(rev, return_index=True)
        keep.sort()
        mru_lines = rev[keep]
        n_sets = self.n_sets
        set_idx = mru_lines % n_sets
        order = np.argsort(set_idx, kind="stable")
        sorted_sets = set_idx[order]
        bounds = np.flatnonzero(sorted_sets[1:] != sorted_sets[:-1]) + 1
        starts = [0, *bounds.tolist(), order.size]
        assoc = self.assoc
        sets = self._sets
        for i in range(len(starts) - 1):
            seg = order[starts[i] : starts[i + 1]]
            s = int(set_idx[seg[0]])
            fresh = (mru_lines[seg] // n_sets).tolist()
            ways = sets[s]
            if ways:
                fresh_tags = set(fresh)
                fresh += [tag for tag in ways if tag not in fresh_tags]
            del fresh[assoc:]
            sets[s] = fresh

    def prefetch(self, line: int) -> bool:
        """Insert a line speculatively; returns True if it was absent."""
        set_index, tag, hit = self._lookup(line)
        self.stats.prefetches_issued += 1
        if hit:
            return False
        self._fill(set_index, tag, dirty=False)
        return True


# --------------------------------------------------------------------------
# Batched LRU replay (columnar engine)
# --------------------------------------------------------------------------
#
# A pure-LRU set (every access moves its line to MRU, every miss allocates)
# has a closed-form hit rule: an access hits iff its *stack distance* — the
# number of distinct other lines touched in the same set since the line's
# previous access — is below the associativity.  The machinery below
# resolves a whole access stream at once:
#
# 1. ops are partitioned by set (stably, so each set's span stays in time
#    order) and adjacent same-key repeats are collapsed: a repeat of the
#    current MRU entry always hits and leaves LRU state untouched;
# 2. the collapsed stream obeys a *gap shortcut*: an op closer than
#    ``assoc`` collapsed ops to the previous access of its key cannot have
#    seen ``assoc`` distinct keys in between, so it hits — and because
#    adjacent collapsed ops always differ, a gap of ``assoc`` or more in a
#    2-way structure always proves a miss, making the shortcut complete
#    for 2-way (and trivially for direct-mapped) geometries;
# 3. the remainder (long gaps in wider structures) is resolved exactly by
#    counting *window firsts* — ops whose own previous access precedes the
#    window, one per distinct key — in vectorised chunks with early exit
#    once the count reaches ``assoc``;
# 4. writebacks come from residency chains (one key's run of accesses
#    between consecutive misses): a dirty chain's victim leaves at the
#    ``assoc``-th window first after the chain's last touch, located by
#    the same chunked scan.
#
# Caches that break the pure-LRU premise (the Cortex-A15's streaming
# stores do not allocate; the L2 prefetcher inserts without refreshing
# recency on hit) are handled by verified fixpoint iterations layered on
# top of this primitive.

_CHUNK = 16          # initial window-first scan width per vectorised step
_CHUNK_MAX = 256     # chunk width doubles per step up to this cap
_MAX_CHUNK_STEPS = 64  # beyond this, unresolved rows take one exact slice


def _stable_set_order(sets: np.ndarray, n_sets: int) -> np.ndarray:
    """Stable argsort by set index, using the narrowest radix that fits."""
    if n_sets <= np.iinfo(np.uint16).max:
        sets = sets.astype(np.uint16)
    elif n_sets <= np.iinfo(np.uint32).max:
        sets = sets.astype(np.uint32)
    return np.argsort(sets, kind="stable")


def _stable_key_order(keys: np.ndarray) -> np.ndarray:
    """Stable argsort of key values, remapped to a narrow dtype when possible."""
    if len(keys) == 0:
        return np.empty(0, dtype=np.int64)
    kmin = int(keys.min())
    if int(keys.max()) - kmin <= np.iinfo(np.uint32).max:
        return np.argsort((keys - kmin).astype(np.uint32), kind="stable")
    return np.argsort(keys, kind="stable")


def _count_window_firsts(
    prev: np.ndarray, p: np.ndarray, end: np.ndarray, limit: int
) -> np.ndarray:
    """Count ``k in (p, end)`` with ``prev[k] <= p``, early-exiting at ``limit``.

    Returns per-query counts that are exact below ``limit`` and clipped-or-
    overshot at/above it (callers only compare against ``limit``).  The scan
    walks each window in vectorised chunks, dropping queries as soon as they
    resolve, so the cost tracks the stack depth actually needed rather than
    the raw window length.
    """
    nq = len(p)
    cnt = np.zeros(nq, dtype=np.int64)
    if nq == 0 or len(prev) == 0:
        return cnt
    lo = p + 1
    act = np.flatnonzero(lo < end)
    m = len(prev)
    # Most queries resolve within a few ops (window firsts are dense), so
    # start with narrow chunks and widen for the stragglers.
    chunk = _CHUNK
    steps = 0
    while act.size:
        steps += 1
        window = lo[act, None] + np.arange(chunk, dtype=np.int64)
        valid = window < end[act, None]
        np.clip(window, 0, m - 1, out=window)
        hits = (prev[window] <= p[act, None]) & valid
        cnt[act] += hits.sum(axis=1, dtype=np.int64)
        lo[act] += chunk
        undecided = (cnt[act] < limit) & (lo[act] < end[act])
        act = act[undecided]
        chunk = min(chunk * 2, _CHUNK_MAX)
        if steps >= _MAX_CHUNK_STEPS:
            break
    for qi in act.tolist():  # pathological windows: one exact slice each
        seg = prev[lo[qi] : end[qi]]
        cnt[qi] += int(np.count_nonzero(seg <= p[qi]))
    return cnt


def _nth_window_first(
    prev: np.ndarray, boundary: np.ndarray, end: np.ndarray, nth: int
) -> np.ndarray:
    """Position of the ``nth`` ``k in (boundary, end)`` with
    ``prev[k] <= boundary``, or -1 when fewer than ``nth`` exist."""
    nq = len(boundary)
    out = np.full(nq, -1, dtype=np.int64)
    if nq == 0 or len(prev) == 0:
        return out
    need = np.full(nq, nth, dtype=np.int64)
    lo = boundary + 1
    act = np.flatnonzero(lo < end)
    m = len(prev)
    chunk = _CHUNK
    while act.size:
        window = lo[act, None] + np.arange(chunk, dtype=np.int64)
        valid = window < end[act, None]
        np.clip(window, 0, m - 1, out=window)
        firsts = (prev[window] <= boundary[act, None]) & valid
        csum = np.cumsum(firsts, axis=1, dtype=np.int64)
        total = csum[:, -1]
        reached = total >= need[act]
        if reached.any():
            rows = np.flatnonzero(reached)
            hit_rows = act[rows]
            off = (csum[rows] >= need[hit_rows][:, None]).argmax(axis=1)
            out[hit_rows] = lo[hit_rows] + off
        need[act] -= total
        lo[act] += chunk
        act = act[~reached]
        act = act[lo[act] < end[act]]
        chunk = min(chunk * 2, _CHUNK_MAX)
    return out


def warm_content_rows(lines, n_sets: int, assoc: int) -> np.ndarray:
    """Compress a silent warm-fill sequence to equivalent mutating rows.

    Counter-silent fills only matter through the final LRU state: per set,
    the last ``assoc`` distinct fills, most recent last.  Replaying the
    returned rows (oldest resident first) as ordinary mutating accesses on
    an empty structure reproduces that state exactly, shrinking a warm
    prefix of arbitrary length to at most ``n_sets * assoc`` rows.
    """
    arr = np.asarray(lines, dtype=np.int64)
    if arr.size == 0:
        return arr
    rev = arr[::-1]
    _, keep = np.unique(rev, return_index=True)
    keep.sort()
    mru = rev[keep]  # distinct lines, most recent first
    sets = mru % n_sets if n_sets > 1 else np.zeros(len(mru), dtype=np.int64)
    order = _stable_set_order(sets, n_sets)
    s_sets = sets[order]
    run_start = np.empty(len(order), dtype=bool)
    if len(order):
        run_start[0] = True
        np.not_equal(s_sets[1:], s_sets[:-1], out=run_start[1:])
    rank = np.arange(len(order), dtype=np.int64)
    base = np.maximum.accumulate(np.where(run_start, rank, -1))
    resident = (rank - base) < assoc
    survivors = order[resident]          # positions into mru, per set
    survivors = np.sort(survivors)[::-1]  # oldest fill first
    return mru[survivors]


@dataclass
class BatchLruResult:
    """Outcome of one :func:`batch_lru_replay` over an access stream."""

    hit: np.ndarray          # bool per op (queries included)
    wrote_back: np.ndarray | None = None  # bool per op; True at evicting ops


def _fullassoc_lru_replay(
    keys: np.ndarray, assoc: int, mutating: np.ndarray | None
) -> BatchLruResult:
    """Exact LRU replay of one fully-associative set via an OrderedDict.

    Wide single-set structures (the gem5 64-entry TLBs) defeat the gap
    shortcut — most accesses sit farther than ``assoc`` collapsed ops from
    their previous touch, pushing every decision into the chunked window
    scans.  A recency-ordered dict is O(1) per op with all the work in C,
    which beats the vectorised path outright on such streams.
    """
    n = len(keys)
    if n == 0:
        return BatchLruResult(np.zeros(0, dtype=bool), None)
    # Small-alphabet fast path: when the stream's distinct keys all fit in
    # the structure at once, nothing is ever evicted — presence reduces to
    # "was this key allocated before", with no LRU bookkeeping at all.
    order = _stable_key_order(keys)
    sk = keys[order]
    new_seg = np.empty(n, dtype=bool)
    new_seg[0] = True
    np.not_equal(sk[1:], sk[:-1], out=new_seg[1:])
    if int(np.count_nonzero(new_seg)) <= assoc:
        hit = np.empty(n, dtype=bool)
        if mutating is None:
            hit_sorted = np.ones(n, dtype=bool)
            hit_sorted[new_seg] = False
        else:
            # Hit iff an earlier op on the same key allocated it.  The
            # stable key sort keeps positions ordered inside a segment,
            # so the exclusive per-segment cumsum of mutate flags counts
            # prior allocations.
            m_sorted = mutating[order].astype(np.int64)
            excl = np.cumsum(m_sorted) - m_sorted
            starts = np.flatnonzero(new_seg)
            seg_len = np.diff(np.append(starts, n))
            hit_sorted = (excl - np.repeat(excl[starts], seg_len)) > 0
        hit[order] = hit_sorted
        return BatchLruResult(hit, None)
    # Collapse runs of identical adjacent keys: only a run's first op can
    # miss, and the run's net LRU effect is one touch (if any op in it
    # mutates).  Page streams are dominated by such runs, so the python
    # loop shrinks by the run-length factor.
    rep_mask = np.empty(n, dtype=bool)
    rep_mask[0] = True
    np.not_equal(keys[1:], keys[:-1], out=rep_mask[1:])
    rep_idx = np.flatnonzero(rep_mask)
    rep_keys = keys[rep_idx]
    if mutating is None:
        rep_mut = None
    else:
        # A run mutates iff any of its ops does.
        csm = np.concatenate([[0], np.cumsum(mutating, dtype=np.int64)])
        ends = np.append(rep_idx[1:], n)
        rep_mut = (csm[ends] - csm[rep_idx]) > 0
    od: OrderedDict[int, None] = OrderedDict()
    move = od.move_to_end
    pop = od.popitem
    rep_hit = np.zeros(len(rep_idx), dtype=bool)
    hits: list[int] = []
    if rep_mut is None:
        for i, k in enumerate(rep_keys.tolist()):
            if k in od:
                move(k)
                hits.append(i)
            else:
                od[k] = None
                if len(od) > assoc:
                    pop(last=False)
    else:
        for i, (k, mut) in enumerate(zip(rep_keys.tolist(), rep_mut.tolist())):
            if k in od:
                if mut:
                    move(k)
                hits.append(i)
            elif mut:
                od[k] = None
                if len(od) > assoc:
                    pop(last=False)
    rep_hit[hits] = True
    if len(rep_idx) == n:
        return BatchLruResult(rep_hit, None)
    rid = np.cumsum(rep_mask, dtype=np.int64) - 1
    hit = rep_hit[rid]
    if mutating is not None:
        # Later ops in a run hit once any earlier op in the run allocated.
        start = rep_idx[rid]
        hit |= (csm[np.arange(n)] - csm[start]) > 0
    else:
        hit[~rep_mask] = True
    return BatchLruResult(hit, None)


def batch_lru_replay(
    keys: np.ndarray,
    n_sets: int,
    assoc: int,
    mutating: np.ndarray | None = None,
    is_write: np.ndarray | None = None,
    track_writebacks: bool = False,
) -> BatchLruResult:
    """Replay a pure-LRU set-associative structure over a whole stream.

    Args:
        keys: Line/page identifiers in global time order; the set of key
            ``k`` is ``k % n_sets``.
        n_sets / assoc: Geometry (matching the scalar models' mapping).
        mutating: Per-op mask; False rows are non-mutating presence probes
            (or non-allocating streamed stores) that read the state without
            touching recency.  Default: every op mutates.
        is_write: Needed with ``track_writebacks`` to resolve dirty
            residencies (a residency is dirty when any mutating access in
            it is a write).
        track_writebacks: Also compute, per op, whether the op's
            allocation evicted a dirty victim.

    Returns:
        Hit flags (and writeback flags) bit-identical to driving the
        scalar :class:`SetAssociativeCache`/``Tlb`` models op by op,
        provided every mutating access allocates on miss and inserts at
        MRU.
    """
    n = len(keys)
    hit = np.zeros(n, dtype=bool)
    wb = np.zeros(n, dtype=bool) if track_writebacks else None
    if track_writebacks and is_write is None:
        raise ValueError("track_writebacks requires is_write")
    if n == 0:
        return BatchLruResult(hit, wb)
    keys = np.asarray(keys, dtype=np.int64)

    if n_sets == 1 and assoc > 2 and not track_writebacks:
        mut = None if mutating is None else np.asarray(mutating, bool)
        return _fullassoc_lru_replay(keys, assoc, mut)

    # Partition by set: each set's ops stay contiguous and in time order,
    # so every same-key window below lies inside one set's span.
    if n_sets > 1:
        order = _stable_set_order(keys % n_sets, n_sets)
        s_keys = keys[order]
    else:
        order = None
        s_keys = keys

    # Mutation subsequence (probes drop out of the state evolution).
    if mutating is None:
        mut_pos = None
        mut_keys = s_keys
    else:
        s_mut = mutating[order] if order is not None else np.asarray(mutating, bool)
        mut_pos = np.flatnonzero(s_mut)
        mut_keys = s_keys[mut_pos]
    m_all = len(mut_keys)

    # Collapse adjacent same-key mutations: repeats are guaranteed hits.
    rep = np.empty(m_all, dtype=bool)
    if m_all:
        rep[0] = True
        np.not_equal(mut_keys[1:], mut_keys[:-1], out=rep[1:])
    starts = np.flatnonzero(rep)
    c_keys = mut_keys[starts]
    M = len(c_keys)

    # Previous collapsed access of the same key, via one stable key sort.
    ksort = _stable_key_order(c_keys)
    kk = c_keys[ksort]
    same = kk[1:] == kk[:-1] if M else np.empty(0, dtype=bool)
    c_prev = np.full(M, -1, dtype=np.int64)
    if M:
        c_prev[ksort[1:][same]] = ksort[:-1][same]

    # Gap shortcut plus exact residue.
    ordinal = np.arange(M, dtype=np.int64)
    gap = ordinal - c_prev - 1
    have_prev = c_prev >= 0
    c_hit = have_prev & (gap < assoc)
    if assoc > 2:
        res = np.flatnonzero(have_prev & (gap >= assoc))
        if res.size:
            cnt = _count_window_firsts(c_prev, c_prev[res], res, assoc)
            c_hit[res] = cnt < assoc

    # Scatter back: collapsed results to survivors, True to repeats.
    mut_hit = np.ones(m_all, dtype=bool)
    mut_hit[starts] = c_hit

    if mut_pos is None:
        s_hit = mut_hit
    else:
        s_hit = np.zeros(n, dtype=bool)
        s_hit[mut_pos] = mut_hit
        qry_pos = np.flatnonzero(~s_mut)
        if qry_pos.size:
            # Collapsed-mutation count before each layout position.
            surv = np.zeros(n, dtype=np.int64)
            surv[mut_pos[starts]] = 1
            cm = np.cumsum(surv) - surv
            r = cm[qry_pos]
            q_keys = s_keys[qry_pos]
            # Last collapsed mutation of the same key before the probe.
            composite = kk * np.int64(M + 1) + ksort
            loc = np.searchsorted(composite, q_keys * np.int64(M + 1) + r,
                                  side="left") - 1
            valid = loc >= 0
            qp = np.full(len(qry_pos), -1, dtype=np.int64)
            if M:
                safe = np.maximum(loc, 0)
                valid &= kk[safe] == q_keys
                qp[valid] = ksort[safe][valid]
            vi = np.flatnonzero(valid)
            if vi.size:
                pj = qp[vi]
                rj = r[vi]
                gq = rj - pj - 1
                qh = gq < assoc
                if assoc > 2:
                    resq = np.flatnonzero(~qh)
                    if resq.size:
                        cnt = _count_window_firsts(
                            c_prev, pj[resq], rj[resq], assoc
                        )
                        qh[resq] = cnt < assoc
                s_hit[qry_pos[vi]] = qh

    if order is None:
        hit = s_hit.copy() if s_hit is mut_hit else s_hit
    else:
        hit[order] = s_hit

    if not track_writebacks:
        return BatchLruResult(hit, wb)
    if M == 0:
        return BatchLruResult(hit, wb)

    # Dirty flag per collapsed run (repeats fold their writes in).
    sw = np.asarray(is_write, bool)
    w_lay = sw[order] if order is not None else sw
    w_mut = w_lay[mut_pos] if mut_pos is not None else w_lay
    cw = np.logical_or.reduceat(w_mut, starts)

    # Residency chains in key-sorted order: a chain runs while the next
    # same-key access still hits; a miss re-allocates and opens a new one.
    k_hit = c_hit[ksort]
    chain_start = np.empty(M, dtype=bool)
    chain_start[0] = True
    chain_start[1:] = ~same | ~k_hit[1:]
    cs_idx = np.flatnonzero(chain_start)
    chain_dirty = np.logical_or.reduceat(cw[ksort], cs_idx)
    chain_end = np.append(cs_idx[1:], M)
    j_last = ksort[chain_end - 1]
    cand = np.flatnonzero(chain_dirty)
    if cand.size == 0:
        return BatchLruResult(hit, wb)

    # Per-collapsed-op set span upper bound, to clamp the eviction scan.
    if n_sets > 1:
        c_sets = c_keys % n_sets
        bnd = np.flatnonzero(c_sets[1:] != c_sets[:-1]) + 1
        uppers = np.append(bnd, M)
        lowers = np.insert(bnd, 0, 0)
        set_end = np.repeat(uppers, uppers - lowers)
    else:
        set_end = np.full(M, M, dtype=np.int64)

    jl = j_last[cand]
    evict_at = _nth_window_first(c_prev, jl, set_end[jl], assoc)
    found = evict_at >= 0
    if found.any():
        ev = evict_at[found]
        orig = starts[ev] if mut_pos is None else mut_pos[starts[ev]]
        wb[order[orig] if order is not None else orig] = True
    return BatchLruResult(hit, wb)


@dataclass
class BatchL1dResult:
    """Per-op outcome of :func:`batch_l1d_replay` (warm prefix included)."""

    hit: np.ndarray
    streamed: np.ndarray     # write misses that bypassed allocation
    wrote_back: np.ndarray
    rounds: int              # fixpoint iterations (0 = no streaming path)

    @property
    def exhausted(self) -> bool:
        """Whether the streaming fixpoint gave up and ran the scalar path.

        Still bit-exact (the scalar fallback is the reference), but the
        outcome array is not a reusable fixpoint seed; the guard layer's
        telemetry distinguishes these from converged replays.
        """
        return self.rounds < 0


def _build_line_ops(lines: np.ndarray, is_write: np.ndarray) -> dict:
    """Per-line op index for the sparse streaming derive.

    Maps each line that is ever stored to the positions (and write flags)
    of all ops touching it — reads included, since a demand read is what
    re-allocates a streamed-out line.  Depends only on the access stream,
    so callers replaying the same stream repeatedly memoise it.
    """
    written = np.unique(lines[is_write])
    cand_idx = np.flatnonzero(is_write | np.isin(lines, written))
    cl = lines[cand_idx]
    order = _stable_key_order(cl)
    sl = cl[order]
    sp = cand_idx[order]
    sw = is_write[cand_idx][order]
    line_ops: dict = {}
    if len(sl) == 0:
        return line_ops
    bounds = np.flatnonzero(sl[1:] != sl[:-1]) + 1
    edges = [0, *bounds.tolist(), len(sl)]
    # Plain python lists: the derive loop does many tiny point lookups,
    # where list indexing + bisect beat numpy scalar calls by ~10x.
    sp_list = sp.tolist()
    sw_list = sw.tolist()
    for a, b in zip(edges[:-1], edges[1:]):
        line_ops[int(sl[a])] = (sp_list[a:b], sw_list[a:b])
    return line_ops


def _derive_stream_decisions(
    miss_idx: list,
    miss_lines: list,
    line_ops: dict,
    train: int,
    n_trackers: int,
    n: int,
) -> np.ndarray:
    """Replay the streaming detectors against one round's hit outcomes.

    A clone of ``SetAssociativeCache._stream_check`` driven by the round's
    store misses, with an *absent overlay*: a streamed store leaves its
    line out of the cache, so the line's next ops behave differently from
    what the stale hit flags claim — a follow-on store really misses (and
    trains the detectors), a read really misses and re-allocates.  Those
    overlay ops are injected sparsely through a heap of per-line cursors
    instead of scanning every candidate op, so a round costs
    O(store misses + ops on absent lines).

    On an outcome prefix that matches real execution both the hit flags
    and the overlay are exact, so the derived decisions are exact at least
    one step beyond the prefix — which is what makes the outer fixpoint
    both exact and convergent.
    """
    streamed = np.zeros(n, dtype=bool)
    trackers: list[list[int]] = []
    victim = 0
    streamed_idx: list[int] = []
    absent: set[int] = set()
    done: set[int] = set()  # positions already replayed as training events
    # (position, line, index into line's op list) of injected overlay ops
    heap: list[tuple[int, int, int]] = []
    mi = 0
    nm = len(miss_idx)

    def push_next(line: int, after: int) -> None:
        pos_list, _ = line_ops[line]
        k = bisect_right(pos_list, after)
        if k < len(pos_list):
            heapq.heappush(heap, (pos_list[k], line, k))

    while mi < nm or heap:
        if heap and (mi >= nm or heap[0][0] <= miss_idx[mi]):
            pos, line, k = heapq.heappop(heap)
            if line not in absent or pos in done:
                continue
            if not line_ops[line][1][k]:
                # A read of an absent line misses and re-allocates it.
                absent.discard(line)
                continue
        else:
            pos, line = miss_idx[mi], miss_lines[mi]
            mi += 1
            if pos in done:
                continue
        # Store miss in real execution: train the detectors.
        done.add(pos)
        stream = False
        matched = False
        for tracker in trackers:
            if line == tracker[0] + 1:
                tracker[0] = line
                tracker[1] += 1
                stream = tracker[1] >= train
                matched = True
                break
            if line == tracker[0]:
                stream = tracker[1] >= train
                matched = True
                break
        if not matched:
            if len(trackers) < n_trackers:
                trackers.append([line, 0])
            else:
                trackers[victim] = [line, 0]
                victim = (victim + 1) % n_trackers
        if stream:
            streamed_idx.append(pos)
            absent.add(line)
            push_next(line, pos)
        else:
            absent.discard(line)
    streamed[streamed_idx] = True
    return streamed


def _scalar_l1d_replay(
    lines: np.ndarray,
    is_write: np.ndarray,
    n_warm: int,
    cache: SetAssociativeCache,
) -> BatchL1dResult:
    """Exact scalar fallback: drive a throwaway cache op by op."""
    n = len(lines)
    hit = np.zeros(n, dtype=bool)
    streamed = np.zeros(n, dtype=bool)
    wrote_back = np.zeros(n, dtype=bool)
    for i in range(n_warm):
        cache.fill(int(lines[i]))
    for i in range(n_warm, n):
        h, wb, allocated = cache.access(int(lines[i]), bool(is_write[i]))
        hit[i] = h
        wrote_back[i] = wb
        streamed[i] = is_write[i] and not h and not allocated
    return BatchL1dResult(hit, streamed, wrote_back, rounds=-1)


def batch_l1d_replay(
    lines: np.ndarray,
    is_write: np.ndarray,
    n_warm: int,
    geometry: SetAssociativeCache,
    max_rounds: int = 12,
    seed_streamed: np.ndarray | None = None,
    aux_memo: dict | None = None,
) -> BatchL1dResult:
    """Batched replay of an L1D access stream, streaming stores included.

    ``lines``/``is_write`` cover the whole stream in time order; the first
    ``n_warm`` ops are counter-silent warm fills (``is_write`` False there).
    ``geometry`` supplies ``n_sets``/``assoc``/streaming parameters; it is
    *not* mutated.

    Streaming-store caches are not pure LRU — whether a store allocates
    depends on detector state, which depends on earlier hit outcomes, which
    depend on earlier allocation decisions.  The loop below iterates on the
    set of streamed stores: replay under the current guess, re-derive the
    detector decisions from the resulting outcomes, repeat until the guess
    reproduces itself.  Any fixpoint equals real execution (induction on
    the first disagreement), and each round extends the exact prefix by at
    least one decision, so the iteration terminates; a scalar fallback
    covers pathological streams that exhaust ``max_rounds``.

    ``seed_streamed`` optionally seeds the initial guess — callers that
    replay the same stream repeatedly (executor sweeps, repeated runs) can
    pass a previously converged decision set, reducing steady state to a
    single verification round.  A wrong seed only costs rounds, never
    correctness: the result is accepted only once the guess reproduces
    itself.  ``aux_memo``, likewise stream-keyed by the caller, caches the
    per-line op index the derive step needs.
    """
    n = len(lines)
    lines = np.asarray(lines, dtype=np.int64)
    n_sets, assoc = geometry.n_sets, geometry.assoc
    if not geometry.write_allocate:
        fresh = SetAssociativeCache(
            geometry.name, geometry.size_bytes, geometry.line_bytes,
            geometry.assoc, write_allocate=False,
            write_streaming=geometry.write_streaming,
        )
        return _scalar_l1d_replay(lines, is_write, n_warm, fresh)
    if not geometry.write_streaming:
        res = batch_lru_replay(lines, n_sets, assoc, is_write=is_write,
                               track_writebacks=True)
        return BatchL1dResult(res.hit, np.zeros(n, bool), res.wrote_back, rounds=0)

    if aux_memo is not None and "line_ops" in aux_memo:
        line_ops = aux_memo["line_ops"]
    else:
        line_ops = _build_line_ops(lines, is_write)
        if aux_memo is not None:
            aux_memo["line_ops"] = line_ops

    if seed_streamed is not None and len(seed_streamed) == n:
        streamed = seed_streamed.astype(bool, copy=True)
    else:
        streamed = np.zeros(n, dtype=bool)
    train, n_trackers = geometry.STREAM_TRAIN, geometry.N_STREAM_TRACKERS
    for round_no in range(1, max_rounds + 1):
        res = batch_lru_replay(lines, n_sets, assoc, mutating=~streamed,
                               is_write=is_write & ~streamed,
                               track_writebacks=True)
        miss_idx = np.flatnonzero(is_write & ~res.hit)
        derived = _derive_stream_decisions(
            miss_idx.tolist(), lines[miss_idx].tolist(), line_ops,
            train, n_trackers, n,
        )
        if np.array_equal(derived, streamed):
            hit = res.hit.copy()
            hit[streamed] = False  # streamed stores report as misses
            return BatchL1dResult(hit, streamed, res.wrote_back, rounds=round_no)
        streamed = derived
    fresh = SetAssociativeCache(
        geometry.name, geometry.size_bytes, geometry.line_bytes,
        geometry.assoc, write_allocate=True,
        write_streaming=True,
    )
    return _scalar_l1d_replay(lines, is_write, n_warm, fresh)


class StridePrefetcher:
    """A degree-N stride prefetcher attached to one cache level.

    Tracks the delta between successive demand-miss lines; after two
    repeats of the same delta it issues ``degree`` prefetches ahead.  The
    gem5 ex5_big configuration is reproduced with a high degree, the
    hardware reference with a conservative one — the source of the paper's
    "L2 prefetches significantly overestimated" observation.
    """

    def __init__(self, cache: SetAssociativeCache, degree: int = 1):
        if degree < 0:
            raise ValueError("degree must be non-negative")
        self.cache = cache
        self.degree = degree
        self._last_line = -1
        self._last_delta = 0
        self._confidence = 0

    def reset(self) -> None:
        """Clear training state (the attached cache is reset separately)."""
        self._last_line = -1
        self._last_delta = 0
        self._confidence = 0

    def train(self, line: int) -> int:
        """Observe a demand miss; returns the number of prefetches issued."""
        if self.degree == 0:
            return 0
        delta = line - self._last_line
        if delta == self._last_delta and delta != 0:
            self._confidence = min(self._confidence + 1, 4)
        else:
            self._confidence = 0
            self._last_delta = delta
        self._last_line = line
        issued = 0
        if self._confidence >= 2:
            for i in range(1, self.degree + 1):
                if self.cache.prefetch(line + self._last_delta * i):
                    issued += 1
        return issued
