"""The "silicon" power process of the simulated ODROID-XU3 clusters.

This is the ground truth that the empirical power models of Section V are
fitted against.  It plays the role of the physical dies: a per-cluster power
draw composed of

* dynamic power — ``V^2 * sum_k(c_k * rate_k)`` over micro-architectural
  activity (cycles, instructions, cache traffic, FP/SIMD, mispredict
  flushes), the classic CMOS ``C * V^2 * f`` form the Powmon models assume;
* static power — a voltage- and temperature-dependent leakage term (the
  paper notes ambient temperature strongly affects measured power [25]);
* a small activity-interaction nonlinearity, so a linear fit is excellent
  but not exact — matching the 2-4 % MAPEs the paper reports rather than an
  implausible 0 %.

Coefficients are per-core energy-per-event values at 1 V, chosen to land the
clusters in the real ODROID-XU3 envelope (A15 cluster: a few watts at high
frequency; A7 cluster: hundreds of milliwatts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class PowerCoefficients:
    """Energy per event at 1 V (joules), plus static-leakage parameters."""

    cycle: float
    instruction: float
    l1d_access: float
    l1i_access: float
    l2_access: float
    bus_access: float
    fp_op: float
    simd_op: float
    mispredict_flush: float
    static_linear: float   # W per volt
    static_cubic: float    # W per volt^3
    idle_core_fraction: float  # clock-gated idle-core share of cycle energy
    interaction: float     # small superlinear activity term


_A15_COEFFS = PowerCoefficients(
    cycle=0.30e-9,
    instruction=0.16e-9,
    l1d_access=0.22e-9,
    l1i_access=0.07e-9,
    l2_access=0.85e-9,
    bus_access=1.60e-9,
    fp_op=0.20e-9,
    simd_op=0.28e-9,
    mispredict_flush=2.4e-9,
    static_linear=0.10,
    static_cubic=0.22,
    idle_core_fraction=0.06,
    interaction=0.006,
)

_A7_COEFFS = PowerCoefficients(
    cycle=0.065e-9,
    instruction=0.045e-9,
    l1d_access=0.060e-9,
    l1i_access=0.020e-9,
    l2_access=0.24e-9,
    bus_access=0.50e-9,
    fp_op=0.060e-9,
    simd_op=0.085e-9,
    mispredict_flush=0.45e-9,
    static_linear=0.022,
    static_cubic=0.050,
    idle_core_fraction=0.05,
    interaction=0.005,
)

#: Number of cores per cluster on the Exynos-5422.
CORES_PER_CLUSTER = 4


class PowerGroundTruth:
    """Noiseless cluster power as a function of activity, V, f and T.

    The platform layer adds sensor sampling and noise on top; this class is
    the underlying physical process.
    """

    def __init__(self, core: str):
        if core == "A15":
            self.coeffs = _A15_COEFFS
        elif core == "A7":
            self.coeffs = _A7_COEFFS
        else:
            raise ValueError(f"unknown core {core!r}; expected 'A7' or 'A15'")
        self.core = core

    def activity_rates(
        self, counts: Mapping[str, float], time_seconds: float
    ) -> dict[str, float]:
        """Per-second activity rates of the power-relevant events."""
        if time_seconds <= 0:
            raise ValueError("time_seconds must be positive")

        def rate(key: str) -> float:
            return counts.get(key, 0.0) / time_seconds

        return {
            "instruction": rate("instructions"),
            "l1d_access": rate("l1d_rd_accesses") + rate("l1d_wr_accesses"),
            "l1i_access": rate("l1i_fetch_accesses"),
            "l2_access": rate("l2_rd_accesses") + rate("l2_wr_accesses"),
            "bus_access": rate("dram_reads") + rate("dram_writes"),
            "fp_op": rate("inst_fp"),
            "simd_op": rate("inst_simd"),
            "mispredict_flush": rate("branch_mispredicts"),
        }

    def static_power(self, voltage: float, temperature_c: float) -> float:
        """Cluster leakage power at a given voltage and die temperature."""
        coeffs = self.coeffs
        leak_scale = 1.0 + 0.006 * (temperature_c - 50.0)
        base = coeffs.static_linear * voltage + coeffs.static_cubic * voltage**3
        return base * max(leak_scale, 0.2)

    def dynamic_power(
        self,
        counts: Mapping[str, float],
        time_seconds: float,
        voltage: float,
        freq_hz: float,
        active_cores: int = 1,
    ) -> float:
        """Cluster dynamic power with ``active_cores`` running the workload.

        ``counts`` describe ONE core's activity over ``time_seconds``; active
        cores are assumed homogeneous (the paper's multi-threaded workloads
        run identical threads), idle cores draw a clock-gated residue.
        """
        if not 1 <= active_cores <= CORES_PER_CLUSTER:
            raise ValueError("active_cores must be between 1 and 4")
        coeffs = self.coeffs
        rates = self.activity_rates(counts, time_seconds)
        cycle_rate = counts.get("cycles", freq_hz * 0.98) / time_seconds

        per_core = coeffs.cycle * cycle_rate
        per_core += coeffs.instruction * rates["instruction"]
        per_core += coeffs.l1d_access * rates["l1d_access"]
        per_core += coeffs.l1i_access * rates["l1i_access"]
        per_core += coeffs.fp_op * rates["fp_op"]
        per_core += coeffs.simd_op * rates["simd_op"]
        per_core += coeffs.mispredict_flush * rates["mispredict_flush"]

        # Shared cluster resources (L2, bus interface) scale with total
        # traffic from all active cores.
        shared = coeffs.l2_access * rates["l2_access"]
        shared += coeffs.bus_access * rates["bus_access"]

        idle_cores = CORES_PER_CLUSTER - active_cores
        idle = coeffs.idle_core_fraction * coeffs.cycle * freq_hz * idle_cores

        linear = per_core * active_cores + shared * active_cores + idle
        # Mild superlinearity: simultaneous high activity draws slightly more
        # than the sum of parts (di/dt and clock-tree effects).
        utilisation = min(rates["instruction"] / max(freq_hz, 1.0), 3.0)
        nonlinear = coeffs.interaction * utilisation * linear
        return voltage**2 * (linear + nonlinear)

    def cluster_power(
        self,
        counts: Mapping[str, float],
        time_seconds: float,
        voltage: float,
        freq_hz: float,
        active_cores: int = 1,
        temperature_c: float = 55.0,
    ) -> float:
        """Total (static + dynamic) cluster power in watts."""
        return self.static_power(voltage, temperature_c) + self.dynamic_power(
            counts, time_seconds, voltage, freq_hz, active_cores
        )
