"""Machine configurations for the reference hardware and the gem5 models.

The two *hardware* configurations encode the true ODROID-XU3 parameters (as
documented in the Cortex-A7/A15 TRMs the paper cites); the *gem5*
configurations encode the specification errors that Section IV identifies in
``ex5_LITTLE.py`` / ``ex5_big.py``:

==========================  =======================  =========================
Parameter                   Hardware (A15)           gem5 ``ex5_big``
==========================  =======================  =========================
Branch predictor            tournament (~96 %)       buggy tournament (~65 %)
L1 ITLB                     32 entries               64 entries
L2 TLB                      shared 512-entry 4-way,  split 1 KB 8-way walker
                            2-cycle                  caches, 4-cycle
DRAM latency                ~105 ns                  ~65 ns (too low)
L1D write streaming         yes                      no (inflates WBs 19x)
L2 prefetcher degree        1                        4 (over-aggressive)
Barrier / exclusive cost    expensive                too cheap
VFP event classification    correct                  counted as SIMD
==========================  =======================  =========================

and for the A7 pair additionally: gem5 L2 hit latency 21 cycles vs 8 on
hardware ("Cortex-A7 L2 cache latency was too high", Fig. 4) and DRAM again
too low.  ``gem5_ex5_big_fixed_bp`` is the post-bug-fix model of Section VII:
identical to ``ex5_big`` except for the repaired predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.uarch.tlb import TlbHierarchyConfig


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry and timing of one cache level.

    Attributes:
        size_kb: Capacity in KiB.
        assoc: Associativity.
        latency: Hit latency in core cycles (exposed on the miss path of the
            level above).
        line_bytes: Line size.
        write_streaming: Cortex-A15 streaming-store detection (no-allocate
            for long sequential store streams).
        prefetch_degree: Stride-prefetcher degree at this level (0 = off).
    """

    size_kb: int
    assoc: int
    latency: int
    line_bytes: int = 64
    write_streaming: bool = False
    prefetch_degree: int = 0

    @property
    def size_bytes(self) -> int:
        return self.size_kb * 1024


@dataclass(frozen=True)
class MachineConfig:
    """Every micro-architectural parameter of one simulated machine.

    ``flavour`` distinguishes the reference hardware semantics from the gem5
    model semantics; a handful of *accounting* flags (not timing) depend on
    it, e.g. gem5 counting one L1I access per instruction where the hardware
    PMU counts one per fetched line (the paper's 2x L1I divergence).
    """

    name: str
    core: str                       # "A7" | "A15"
    flavour: str                    # "hardware" | "gem5"
    # Pipeline shape.
    issue_width: int
    out_of_order: bool
    mispredict_penalty: float
    mem_overlap: float              # fraction of L2-hit latency hidden (MLP)
    dram_overlap: float             # fraction of DRAM latency hidden
    inorder_efficiency: float = 1.0  # <1 adds in-order issue inefficiency
    # Branch prediction.
    predictor: str = "tournament"
    predictor_table_bits: int = 12
    predictor_history_bits: int = 10
    wrongpath_fetch: int = 8        # instructions fetched past a mispredict
    ras_corruption: float = 0.05    # P(RAS poisoned | mispredict)
    indirect_corruption: float = 0.10
    wrongpath_far_fraction: float = 0.10  # P(wrong-path target on a far page)
    # Memory hierarchy.
    l1i: CacheGeometry = CacheGeometry(32, 2, 4)
    l1d: CacheGeometry = CacheGeometry(32, 4, 4)
    l2: CacheGeometry = CacheGeometry(2048, 16, 21)
    tlb: TlbHierarchyConfig = TlbHierarchyConfig()
    dram_latency_ns: float = 100.0
    # Exposed per-operation stall cycles.
    mul_penalty: float = 0.0
    div_penalty: float = 6.0
    fp_penalty: float = 0.0
    simd_penalty: float = 0.0
    # Synchronisation and misc costs.
    barrier_cycles: float = 30.0
    ldrex_cycles: float = 3.0
    strex_cycles: float = 5.0
    unaligned_penalty: float = 1.0
    store_miss_exposure: float = 0.2
    load_use_exposure: float = 0.0  # exposed fraction of L1D hit latency
    # Accounting semantics.
    l1i_access_per_instruction: bool = False
    vfp_counted_as_simd: bool = False
    # Multithreading.
    sync_slowdown_per_thread: float = 0.04

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (
            f"{self.name} ({self.core}, {self.flavour}): "
            f"{'OoO' if self.out_of_order else 'in-order'} width {self.issue_width}, "
            f"BP {self.predictor}, L1I TLB {self.tlb.itlb_entries}e, "
            f"L2 {self.l2.size_kb} KiB @{self.l2.latency}cy, "
            f"DRAM {self.dram_latency_ns:.0f} ns"
        )


def hardware_a15() -> MachineConfig:
    """The real Cortex-A15 cluster of the ODROID-XU3 (reference truth)."""
    return MachineConfig(
        name="hw-a15",
        core="A15",
        flavour="hardware",
        issue_width=3,
        out_of_order=True,
        mispredict_penalty=15.0,
        mem_overlap=0.60,
        dram_overlap=0.35,
        predictor="tournament",
        wrongpath_fetch=8,
        ras_corruption=0.05,
        indirect_corruption=0.10,
        wrongpath_far_fraction=0.10,
        l1i=CacheGeometry(32, 2, 4),
        l1d=CacheGeometry(32, 4, 4, write_streaming=True),
        l2=CacheGeometry(2048, 16, 21, prefetch_degree=1),
        tlb=TlbHierarchyConfig(
            itlb_entries=32,
            dtlb_entries=32,
            unified_l2=True,
            l2_entries=512,
            l2_assoc=4,
            l2_latency=2,
            walk_cycles=28,
        ),
        dram_latency_ns=105.0,
        div_penalty=6.0,
        barrier_cycles=55.0,
        ldrex_cycles=10.0,
        strex_cycles=16.0,
        unaligned_penalty=1.0,
        store_miss_exposure=0.2,
        sync_slowdown_per_thread=0.04,
    )


def gem5_ex5_big() -> MachineConfig:
    """The pre-fix ``ex5_big.py`` gem5 model, with its specification errors."""
    hw = hardware_a15()
    return replace(
        hw,
        name="gem5-ex5-big",
        flavour="gem5",
        # The o3 model squashes deeper than the hardware recovers: fetch
        # redirect plus re-fill costs more cycles than the A15's checkpointed
        # recovery, independent of the direction-logic bug.
        mispredict_penalty=21.0,
        predictor="buggy_tournament",
        wrongpath_fetch=12,
        ras_corruption=0.40,
        indirect_corruption=0.50,
        wrongpath_far_fraction=0.15,
        l1d=CacheGeometry(32, 4, 4, write_streaming=False),
        l2=CacheGeometry(2048, 16, 21, prefetch_degree=4),
        tlb=TlbHierarchyConfig(
            itlb_entries=64,
            dtlb_entries=64,
            unified_l2=False,
            l2_entries=128,   # 1 KiB walker cache of 8 B descriptors
            l2_assoc=8,
            l2_latency=4,
            walk_cycles=32,
        ),
        dram_latency_ns=65.0,
        barrier_cycles=12.0,
        ldrex_cycles=1.0,
        strex_cycles=1.0,
        unaligned_penalty=0.0,
        l1i_access_per_instruction=True,
        vfp_counted_as_simd=True,
        sync_slowdown_per_thread=0.015,
    )


def gem5_ex5_big_fixed_bp() -> MachineConfig:
    """``ex5_big.py`` after the branch-predictor bug fix (Section VII)."""
    return replace(
        gem5_ex5_big(),
        name="gem5-ex5-big-fixed",
        predictor="tournament",
        ras_corruption=0.10,
        indirect_corruption=0.15,
    )


def hardware_a7() -> MachineConfig:
    """The real Cortex-A7 cluster (in-order, energy-optimised)."""
    return MachineConfig(
        name="hw-a7",
        core="A7",
        flavour="hardware",
        issue_width=2,
        out_of_order=False,
        inorder_efficiency=0.85,
        mispredict_penalty=8.0,
        mem_overlap=0.10,
        dram_overlap=0.10,
        predictor="tournament",
        predictor_table_bits=10,
        predictor_history_bits=8,
        wrongpath_fetch=4,
        ras_corruption=0.05,
        indirect_corruption=0.10,
        wrongpath_far_fraction=0.08,
        l1i=CacheGeometry(32, 2, 2),
        l1d=CacheGeometry(32, 4, 3),
        l2=CacheGeometry(512, 8, 8, prefetch_degree=1),
        tlb=TlbHierarchyConfig(
            itlb_entries=10,
            dtlb_entries=10,
            unified_l2=True,
            l2_entries=256,
            l2_assoc=2,
            l2_latency=2,
            walk_cycles=35,
        ),
        dram_latency_ns=120.0,
        mul_penalty=0.5,
        div_penalty=20.0,
        fp_penalty=1.2,
        simd_penalty=0.8,
        barrier_cycles=18.0,
        ldrex_cycles=2.0,
        strex_cycles=3.0,
        unaligned_penalty=1.0,
        store_miss_exposure=0.5,
        load_use_exposure=0.35,
        sync_slowdown_per_thread=0.05,
    )


def gem5_ex5_little() -> MachineConfig:
    """The ``ex5_LITTLE.py`` gem5 model: accurate BP, but DRAM latency too
    low and L2 hit latency too high (the paper's Fig. 4 findings)."""
    hw = hardware_a7()
    return replace(
        hw,
        name="gem5-ex5-little",
        flavour="gem5",
        l2=CacheGeometry(512, 8, 18, prefetch_degree=2),
        tlb=TlbHierarchyConfig(
            itlb_entries=64,
            dtlb_entries=64,
            unified_l2=False,
            l2_entries=128,
            l2_assoc=8,
            l2_latency=2,
            walk_cycles=35,
        ),
        dram_latency_ns=62.0,
        barrier_cycles=8.0,
        ldrex_cycles=1.0,
        strex_cycles=1.0,
        unaligned_penalty=0.0,
        l1i_access_per_instruction=True,
        vfp_counted_as_simd=True,
        sync_slowdown_per_thread=0.02,
    )


_FACTORIES = {
    "hw-a15": hardware_a15,
    "hw-a7": hardware_a7,
    "gem5-ex5-big": gem5_ex5_big,
    "gem5-ex5-big-fixed": gem5_ex5_big_fixed_bp,
    "gem5-ex5-little": gem5_ex5_little,
}


def machine_by_name(name: str) -> MachineConfig:
    """Instantiate a machine configuration by its canonical name.

    Raises:
        KeyError: For unknown names; known names are the keys of the
            internal factory table (``hw-a15``, ``gem5-ex5-big``, ...).
    """
    return _FACTORIES[name]()
