"""Deterministic fault injection for the simulation and measurement layers.

Real GemStone runs die in real ways: a board locks up mid-workload, a worker
process is OOM-killed, a power sensor drops samples or returns NaN, a result
file on disk is half-written when the filesystem fills.  The executor, cache
and platform all have recovery paths for these failures — this module makes
those paths *testable* by injecting each failure class deterministically.

A :class:`FaultPlan` is an immutable, picklable description of which faults
fire where:

* ``crash`` — a simulation job dies.  In a worker process this is a hard
  ``os._exit`` (the pool observes a genuine ``BrokenProcessPool``); in the
  parent's serial path it raises :class:`InjectedFault` (a poisoned job).
* ``hang`` — a job sleeps past the executor's per-job timeout.
* ``corrupt-cache`` — a :class:`~repro.sim.result_cache.SimResultCache`
  write is replaced with truncated garbage, exercising the integrity check
  and quarantine path on the next read.
* ``drop-power`` / ``nan-power`` — the platform's 3.8 Hz power sensor loses
  samples or returns NaN, exercising the robust-mean path and the
  sample-loss accounting in :class:`~repro.core.validation.CollectionHealth`.
* ``corrupt-column`` / ``poison-memo`` / ``nan-pass`` — columnar-engine
  faults consumed by :func:`repro.sim.guard.guarded_simulate`: a decoded
  column is bit-flipped (decode validation must quarantine + re-decode), a
  verified-decode memo is scrambled (the divergence sentinel must catch the
  silently wrong replay), or a vectorized pass leaks a NaN into the result
  (the integrity scan must reject it).  All three heal in-call, so the
  returned result stays bit-identical to the scalar reference.
* ``oom`` — a worker breaches the guard plan's memory budget: the job
  raises :class:`MemoryError` in a worker (and in the parent's pool-retry
  path), exercising the executor's isolate-to-serial OOM lane.
* ``shard-crash`` / ``lease-stall`` — campaign-shard faults consumed by
  :mod:`repro.sim.campaign` workers: a shard process dies *after* storing
  its result but *before* marking the job done (the orphaned result must
  be adopted by whichever shard steals the expired lease), or a shard
  stalls past the lease TTL while still alive (a peer must steal the
  lease and the staller must notice on waking and abandon the job so no
  result is duplicated).

Every fault is seeded: the same plan against the same batch injects the
same failures, so chaos tests can assert *bit-identical* recovery.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.workloads.trace import workload_seed

#: Fault kinds a :class:`FaultSpec` may carry.
FAULT_KINDS = (
    "crash",
    "hang",
    "corrupt-cache",
    "drop-power",
    "nan-power",
    "corrupt-column",
    "poison-memo",
    "nan-pass",
    "oom",
    "shard-crash",
    "lease-stall",
)

#: Kinds consumed inside :func:`repro.sim.guard.guarded_simulate`.
COLUMNAR_FAULT_KINDS = ("corrupt-column", "poison-memo", "nan-pass")

#: Kinds consumed by campaign shard workers (:mod:`repro.sim.campaign`).
SHARD_FAULT_KINDS = ("shard-crash", "lease-stall")


class InjectedFault(RuntimeError):
    """Raised (in-process) by a ``crash`` fault; never raised in workers."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected failure.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        job: Executor job ordinal to hit (``crash``/``hang``); ordinals
            count unique simulated jobs across the executor's lifetime.
        workload: Workload (trace) name to hit; ``None`` matches any
            workload for the power faults, and is an alternative to ``job``
            for ``crash``/``hang`` (every attempt for that workload).
        attempts: Inject on the first N attempts (or first N cache writes)
            of the matched job, so bounded retries eventually succeed.
        hang_seconds: Sleep duration for ``hang``.
        fraction: Share of power samples affected by the power faults.
    """

    kind: str
    job: int | None = None
    workload: str | None = None
    attempts: int = 1
    hang_seconds: float = 0.25
    fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        job_scoped = ("crash", "hang", "oom") + COLUMNAR_FAULT_KINDS + SHARD_FAULT_KINDS
        if self.kind in job_scoped and self.job is None and self.workload is None:
            raise ValueError(f"{self.kind} fault needs a job ordinal or a workload name")

    def _matches_job(self, ordinal: int, trace_name: str, attempt: int) -> bool:
        if attempt > self.attempts:
            return False
        if self.job is not None:
            return self.job == ordinal
        return self.workload == trace_name


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of seeded faults, shareable across processes.

    Build plans from the classmethod constructors and combine them with
    ``|``::

        plan = FaultPlan.crash_job(0) | FaultPlan.corrupt_cache("mi-sha")
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    # ------------------------------------------------------------ constructors
    @classmethod
    def crash_job(cls, job: int, attempts: int = 1) -> "FaultPlan":
        """Kill the worker running job ordinal ``job`` (first N attempts)."""
        return cls((FaultSpec("crash", job=job, attempts=attempts),))

    @classmethod
    def crash_workload(cls, workload: str, attempts: int = 1) -> "FaultPlan":
        """Crash every attempt (up to N) to simulate one workload."""
        return cls((FaultSpec("crash", workload=workload, attempts=attempts),))

    @classmethod
    def hang_job(
        cls, job: int, seconds: float = 0.25, attempts: int = 1
    ) -> "FaultPlan":
        """Make job ordinal ``job`` sleep past the executor timeout."""
        return cls((FaultSpec("hang", job=job, hang_seconds=seconds, attempts=attempts),))

    @classmethod
    def corrupt_cache(cls, workload: str | None = None, attempts: int = 1) -> "FaultPlan":
        """Replace the first N cache writes for ``workload`` with garbage."""
        return cls((FaultSpec("corrupt-cache", workload=workload, attempts=attempts),))

    @classmethod
    def corrupt_column(cls, workload: str, attempts: int = 1) -> "FaultPlan":
        """Bit-flip a decoded column before the first N replays of a workload."""
        return cls((FaultSpec("corrupt-column", workload=workload, attempts=attempts),))

    @classmethod
    def poison_memo(cls, workload: str, attempts: int = 1) -> "FaultPlan":
        """Scramble the decode's warm-row memos before the first N replays."""
        return cls((FaultSpec("poison-memo", workload=workload, attempts=attempts),))

    @classmethod
    def nan_pass(cls, workload: str, attempts: int = 1) -> "FaultPlan":
        """Leak a NaN out of a vectorized pass on the first N replays."""
        return cls((FaultSpec("nan-pass", workload=workload, attempts=attempts),))

    @classmethod
    def worker_oom(cls, workload: str, attempts: int = 1) -> "FaultPlan":
        """Breach the memory budget (``MemoryError``) on the first N attempts."""
        return cls((FaultSpec("oom", workload=workload, attempts=attempts),))

    @classmethod
    def shard_crash(cls, workload: str, attempts: int = 1) -> "FaultPlan":
        """Kill a campaign shard after storing ``workload``'s result.

        Fires between the store write and the done marker, so the lease
        expires with an orphaned-but-intact result on disk; the stealing
        shard must adopt it instead of recomputing.
        """
        return cls((FaultSpec("shard-crash", workload=workload, attempts=attempts),))

    @classmethod
    def lease_stall(
        cls, workload: str, seconds: float = 1.0, attempts: int = 1
    ) -> "FaultPlan":
        """Stall a live shard past the lease TTL after claiming a job."""
        return cls(
            (FaultSpec("lease-stall", workload=workload, hang_seconds=seconds,
                       attempts=attempts),)
        )

    @classmethod
    def drop_power(cls, workload: str | None = None, fraction: float = 0.25) -> "FaultPlan":
        """Drop a deterministic share of the platform's power samples."""
        return cls((FaultSpec("drop-power", workload=workload, fraction=fraction),))

    @classmethod
    def nan_power(cls, workload: str | None = None, fraction: float = 0.25) -> "FaultPlan":
        """Replace a share of the platform's power samples with NaN."""
        return cls((FaultSpec("nan-power", workload=workload, fraction=fraction),))

    def __or__(self, other: "FaultPlan") -> "FaultPlan":
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return FaultPlan(self.faults + other.faults, seed=self.seed or other.seed)

    def __bool__(self) -> bool:
        return bool(self.faults)

    # -------------------------------------------------------------- job faults
    def apply_job_fault(
        self, ordinal: int, trace_name: str, attempt: int, in_worker: bool
    ) -> None:
        """Fire any ``crash``/``hang`` fault matching this job attempt.

        ``crash`` hard-kills a worker process (``os._exit``) so the pool
        sees a genuine broken-pool condition, but raises
        :class:`InjectedFault` in the parent so the serial retry path stays
        testable without killing the test process.
        """
        for spec in self.faults:
            if spec.kind == "hang" and spec._matches_job(ordinal, trace_name, attempt):
                time.sleep(spec.hang_seconds)
            elif spec.kind == "crash" and spec._matches_job(ordinal, trace_name, attempt):
                if in_worker:
                    os._exit(1)
                raise InjectedFault(
                    f"injected crash: job {ordinal} ({trace_name}) attempt {attempt}"
                )
            elif spec.kind == "oom" and spec._matches_job(ordinal, trace_name, attempt):
                # MemoryError pickles cleanly back through the pool, so the
                # same raise exercises both the worker OOM lane and the
                # parent's serial recovery once attempts are exhausted.
                raise MemoryError(
                    f"injected memory-budget breach: job {ordinal} "
                    f"({trace_name}) attempt {attempt}"
                )

    # ------------------------------------------------------------ shard faults
    def shard_fault(
        self, phase: str, trace_name: str, attempt: int
    ) -> FaultSpec | None:
        """The shard fault (if any) firing at this campaign phase.

        ``phase`` is where the worker currently is: ``"claimed"`` (lease
        held, job not yet run — where ``lease-stall`` sleeps) or
        ``"stored"`` (result written, done marker not yet placed — where
        ``shard-crash`` kills the shard).  Matching is by workload name
        and attempt count, same as the executor job faults.
        """
        wanted = {"claimed": "lease-stall", "stored": "shard-crash"}.get(phase)
        if wanted is None:
            return None
        for spec in self.faults:
            if spec.kind == wanted and spec._matches_job(-1, trace_name, attempt):
                return spec
        return None

    # ------------------------------------------------------- columnar faults
    def columnar_faults(
        self, trace_name: str, attempt: int, ordinal: int = -1
    ) -> tuple[str, ...]:
        """Columnar fault kinds firing on this replay attempt of a trace.

        Consumed by :func:`repro.sim.guard.guarded_simulate`, which injects
        the matching corruption before/after the columnar replay so every
        guard fallback path is exercised deterministically.
        """
        return tuple(
            spec.kind
            for spec in self.faults
            if spec.kind in COLUMNAR_FAULT_KINDS
            and spec._matches_job(ordinal, trace_name, attempt)
        )

    # ------------------------------------------------------------ cache faults
    def corrupts_cache(self, trace_name: str, nth_put: int) -> bool:
        """True when the nth cache write for this trace must be garbled."""
        return any(
            spec.kind == "corrupt-cache"
            and nth_put <= spec.attempts
            and (spec.workload is None or spec.workload == trace_name)
            for spec in self.faults
        )

    # ------------------------------------------------------------ power faults
    def apply_power_faults(
        self, workload: str, label: str, samples: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Apply ``drop-power``/``nan-power`` to one sensor window.

        Returns the (possibly shortened or NaN-holed) sample array and the
        number of samples lost.  Seeded per (plan seed, workload, label) so
        repeated characterisation loses the identical samples; a plan with
        no power faults returns the input untouched.
        """
        specs = [
            spec
            for spec in self.faults
            if spec.kind in ("drop-power", "nan-power")
            and (spec.workload is None or spec.workload == workload)
        ]
        if not specs or samples.size == 0:
            return samples, 0
        rng = np.random.default_rng(
            workload_seed(workload, f"fault-{self.seed}-{label}")
        )
        lost = 0
        for spec in specs:
            n_hit = min(samples.size, max(1, int(round(samples.size * spec.fraction))))
            hit = rng.choice(samples.size, size=n_hit, replace=False)
            if spec.kind == "drop-power":
                keep = np.ones(samples.size, dtype=bool)
                keep[hit] = False
                samples = samples[keep]
            else:
                samples = samples.copy()
                samples[hit] = np.nan
            lost += n_hit
        return samples, lost
