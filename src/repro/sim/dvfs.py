"""DVFS operating points and voltage tables for the Exynos-5422 clusters.

The paper sweeps 200/600/1000/1400 MHz on the Cortex-A7 and
600/1000/1400/1800 MHz on the Cortex-A15 (2 GHz thermally throttles, so
1.8 GHz is the ceiling used — Section III).  The voltage values follow the
published Exynos-5422 ASV tables to within binning tolerance; the power
model application tool takes its voltage from this lookup, which is what
lets a power model be re-applied at a different voltage without re-running
the simulation (Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

MHZ = 1_000_000.0


@dataclass(frozen=True)
class OperatingPoint:
    """A single DVFS operating performance point."""

    freq_hz: float
    voltage: float

    @property
    def freq_mhz(self) -> float:
        return self.freq_hz / MHZ

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.freq_mhz:.0f} MHz @ {self.voltage:.4f} V"


class OppTable:
    """Ordered table of operating points for one CPU cluster."""

    def __init__(self, core: str, points: list[OperatingPoint]):
        if not points:
            raise ValueError("an OPP table needs at least one point")
        self.core = core
        self.points = sorted(points, key=lambda p: p.freq_hz)
        self._by_freq = {round(p.freq_hz): p for p in self.points}

    def voltage(self, freq_hz: float) -> float:
        """Voltage for a supported frequency.

        Raises:
            KeyError: If the frequency is not an exact table entry.
        """
        key = round(freq_hz)
        if key not in self._by_freq:
            supported = ", ".join(f"{p.freq_mhz:.0f}" for p in self.points)
            raise KeyError(
                f"{freq_hz / MHZ:.0f} MHz is not an OPP of the {self.core} "
                f"(supported: {supported} MHz)"
            )
        return self._by_freq[key].voltage

    def frequencies(self) -> list[float]:
        """All supported frequencies in Hz, ascending."""
        return [p.freq_hz for p in self.points]

    @property
    def min_freq(self) -> float:
        return self.points[0].freq_hz

    @property
    def max_freq(self) -> float:
        return self.points[-1].freq_hz


#: Frequencies the paper's Experiment 1 sweeps per cluster.
EXPERIMENT_FREQUENCIES_MHZ: dict[str, tuple[int, ...]] = {
    "A7": (200, 600, 1000, 1400),
    "A15": (600, 1000, 1400, 1800),
}

_A7_TABLE = [
    OperatingPoint(200 * MHZ, 0.9125),
    OperatingPoint(400 * MHZ, 0.9250),
    OperatingPoint(600 * MHZ, 0.9500),
    OperatingPoint(800 * MHZ, 1.0000),
    OperatingPoint(1000 * MHZ, 1.0500),
    OperatingPoint(1200 * MHZ, 1.1250),
    OperatingPoint(1400 * MHZ, 1.2000),
]

_A15_TABLE = [
    OperatingPoint(200 * MHZ, 0.9000),
    OperatingPoint(400 * MHZ, 0.9125),
    OperatingPoint(600 * MHZ, 0.9375),
    OperatingPoint(800 * MHZ, 0.9750),
    OperatingPoint(1000 * MHZ, 1.0125),
    OperatingPoint(1200 * MHZ, 1.0625),
    OperatingPoint(1400 * MHZ, 1.1250),
    OperatingPoint(1600 * MHZ, 1.1875),
    OperatingPoint(1800 * MHZ, 1.2625),
    OperatingPoint(2000 * MHZ, 1.3625),
]


def opp_table_for(core: str) -> OppTable:
    """The OPP table of one cluster (``"A7"`` or ``"A15"``)."""
    if core == "A7":
        return OppTable("A7", list(_A7_TABLE))
    if core == "A15":
        return OppTable("A15", list(_A15_TABLE))
    raise ValueError(f"unknown core {core!r}; expected 'A7' or 'A15'")


def experiment_frequencies(core: str) -> list[float]:
    """The paper's sweep frequencies for one cluster, in Hz."""
    if core not in EXPERIMENT_FREQUENCIES_MHZ:
        raise ValueError(f"unknown core {core!r}")
    return [mhz * MHZ for mhz in EXPERIMENT_FREQUENCIES_MHZ[core]]
