"""Full-system simulators: the hardware reference and the gem5-style model.

* :mod:`repro.sim.machine` — machine configurations.  The *hardware* configs
  carry the true Cortex-A7/A15 parameters; the *gem5* configs carry the
  documented specification errors of ``ex5_LITTLE.py`` / ``ex5_big.py``.
* :mod:`repro.sim.cpu` — the shared trace-driven CPU simulator.
* :mod:`repro.sim.dvfs` — operating performance points and voltage tables.
* :mod:`repro.sim.platform` — the ODROID-XU3-like hardware platform with a
  multiplexed PMU, 3.8 Hz power sensors, and thermal throttling.
* :mod:`repro.sim.gem5` — the gem5-style simulation wrapper emitting stats in
  the gem5 namespace.
* :mod:`repro.sim.power_ground_truth` — the "silicon" power process.
* :mod:`repro.sim.executor` — fault-tolerant parallel fan-out of
  independent simulation jobs across worker processes, with dedup, disk
  caching, bounded retry/timeout/crash isolation and telemetry.
* :mod:`repro.sim.faults` — deterministic fault injection (worker crashes,
  hangs, cache corruption, power-sample loss) for chaos testing.
"""

from repro.sim.cpu import (
    CpuSimulator,
    DvfsPointResult,
    SimResult,
    simulate,
    simulate_dvfs_sweep,
)
from repro.sim.dvfs import OperatingPoint, OppTable, opp_table_for
from repro.sim.executor import (
    RetryPolicy,
    SimExecutor,
    SimJobError,
    SimJobFailure,
    SimTelemetry,
    prime_engines,
)
from repro.sim.faults import FaultPlan, FaultSpec, InjectedFault
from repro.sim.gem5 import Gem5Simulation, Gem5Stats
from repro.sim.machine import (
    CacheGeometry,
    MachineConfig,
    gem5_ex5_big,
    gem5_ex5_big_fixed_bp,
    gem5_ex5_little,
    hardware_a7,
    hardware_a15,
    machine_by_name,
)
from repro.sim.platform import HardwarePlatform, HwMeasurement
from repro.sim.power_ground_truth import PowerGroundTruth

__all__ = [
    "CpuSimulator",
    "DvfsPointResult",
    "SimResult",
    "simulate",
    "simulate_dvfs_sweep",
    "OperatingPoint",
    "OppTable",
    "opp_table_for",
    "Gem5Simulation",
    "Gem5Stats",
    "CacheGeometry",
    "MachineConfig",
    "gem5_ex5_big",
    "gem5_ex5_big_fixed_bp",
    "gem5_ex5_little",
    "hardware_a7",
    "hardware_a15",
    "machine_by_name",
    "HardwarePlatform",
    "HwMeasurement",
    "PowerGroundTruth",
    "RetryPolicy",
    "SimExecutor",
    "SimJobError",
    "SimJobFailure",
    "SimTelemetry",
    "prime_engines",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
]
