"""Columnar replay engine: vectorized trace replay, bit-identical results.

The scalar engine in :mod:`repro.sim.cpu` dispatches one Python iteration
per dynamic block.  This module replays the same trace as a handful of
whole-trace passes instead:

1. **Branch pass** — every conditional branch is resolved at once
   (:func:`repro.uarch.branch.predict_conditional_batch`): the 2-bit
   counter tables become segmented clamp-scans, gshare history a bit
   convolution.  The conditional predictor is a closed subsystem — its
   state is touched by conditional branches only — so this pass is exact.
2. **Control pass** — a sparse scalar walk over just the control-flow
   blocks that interact with shared speculative state (calls, returns,
   indirect branches, plus the mispredicted conditionals): RAS, shadow
   stack, indirect predictor, and the LCG that picks wrong-path targets.
3. **L1 passes** — the L1I, L1D, ITLB and DTLB access streams are fully
   known once the control pass has fixed the wrong-path fetches, and each
   structure is pure LRU (the A15's streaming stores are resolved by
   :func:`repro.uarch.cache.batch_l1d_replay`'s verified fixpoint), so
   per-op hits, streamed stores and writebacks come from the batched
   stack-distance machinery in :mod:`repro.uarch.cache`.
4. **Merged L2 walk** — only the events that reach the shared L2 /
   L2 TLB / prefetcher (a few percent of all accesses) are replayed in
   exact program order against the real scalar models.  All
   order-sensitive float accumulation (stall terms with inexact weights,
   DRAM exposure weights) happens here, in the same order as the scalar
   engine, which is what keeps `SimResult` *bit-identical* rather than
   merely close.

The golden suite and the randomized equivalence suite assert
bit-identity against the scalar engine, which remains the reference.
"""

from __future__ import annotations

import zlib
from collections import deque

import numpy as np

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.machine import MachineConfig
from repro.uarch.branch import predict_conditional_batch
from repro.uarch.cache import (
    CacheStats,
    batch_l1d_replay,
    batch_lru_replay,
    warm_content_rows,
)
from repro.uarch.tlb import TlbStats, batch_tlb_replay
from repro.workloads.trace import (
    CACHE_LINE_BYTES,
    PAGE_BYTES,
    SyntheticTrace,
)

_LCG_MULT = 1103515245
_LCG_ADD = 12345
_LCG_MASK = 0x7FFFFFFF

_CLS_RANDOM = 3  # BranchClass.RANDOM: last conditional class
_CLS_CALL = 4
_CLS_RETURN = 5

# Merged-walk event kinds, ordered roughly by expected frequency.
_EV_L1D_MISS = 0
_EV_DTLB_MISS = 1
_EV_L1D_WB = 2
_EV_L1I_MISS = 3
_EV_L1D_STREAM = 4
_EV_WP_TLB = 5
_EV_WP_L1I = 6
_EV_ITLB_MISS = 7

# Phase order of events inside one dynamic block, matching the scalar
# engine: instruction pages, instruction lines, data slots, wrong path.
_PH_IPAGE = 0
_PH_ILINE = 1
_PH_DATA = 2
_PH_WP = 3


def _merge_order(pos, phase, intra, sub):
    """Sort events into scalar program order: (pos, phase, intra, sub)."""
    return np.lexsort((sub, intra, phase, pos))


def _repeated_sum(value: float, n: int) -> float:
    """``n`` sequential float additions of ``value`` onto 0.0.

    Matches the scalar engine's accumulation rounding exactly.  For the
    integer-valued penalties of the stock machine configurations this
    equals ``n * value``, but custom configurations may use penalties
    where sequential addition rounds differently.
    """
    total = 0.0
    for _ in range(n):
        total += value
    return total


def simulate_columnar(
    trace: SyntheticTrace,
    machine: MachineConfig,
    state=None,
    tracer: Tracer = NULL_TRACER,
):
    """Replay ``trace`` on ``machine`` with the columnar engine.

    Returns a `SimResult` bit-identical to ``repro.sim.cpu._simulate``.
    ``state`` is an optional reused `_SimState` (reset by the caller);
    only its L2-side objects and geometry carriers are used here.
    """
    from repro.sim.cpu import (
        _SHADOW_STACK_DEPTH,
        _data_warm_arrays,
        _finalise,
        _make_state,
    )

    if state is None:
        state = _make_state(machine)
    l2 = state.l2
    l2_prefetcher = state.l2_prefetcher
    tlb = state.tlb
    ras = state.ras
    shadow_stack: deque[int] = deque(maxlen=_SHADOW_STACK_DEPTH)
    indirect = state.indirect

    tables = trace.replay_tables()
    with tracer.span("replay/decode", kind="replay"):
        cols = tables.columnar(trace)

    # ---------------------------------------------------------------- warm
    # Every structure is replayed in batch form: the warm sequences become
    # (compressed) mutating rows at the head of each stream, so the real
    # state objects are only touched if the L2 fixpoint falls back to the
    # scalar walk.
    code_lines = np.asarray(tables.code_lines, dtype=np.int64)
    code_pages = np.asarray(tables.code_pages, dtype=np.int64)
    memo = cols.fixpoint_seeds
    dw_key = ("data_warm", l2.size_bytes)
    if dw_key in memo:
        l2_warm, l1d_warm, data_pages = memo[dw_key]
    else:
        l2_warm, l1d_warm, data_pages = _data_warm_arrays(trace, l2.size_bytes)
        if l2_warm is None:
            l1d_warm = np.empty(0, dtype=np.int64)
            data_pages = np.empty(0, dtype=np.int64)
        memo[dw_key] = (l2_warm, l1d_warm, data_pages)

    # ---------------------------------------------------------- branch pass
    with tracer.span("replay/branch_pass", kind="replay"):
        cond_prediction = predict_conditional_batch(
            machine.predictor,
            machine.predictor_table_bits,
            machine.predictor_history_bits,
            cols.cond_pc,
            cols.cond_taken,
            cols.cond_backward,
        )
        cond_taken_b = cols.cond_taken.astype(bool)
        cond_miss = cond_prediction != cond_taken_b

    # ---------------------------------------------------------- control pass
    with tracer.span("replay/control_pass", kind="replay"):
        ctrl = _control_pass(trace, machine, cols, cond_miss, ras, shadow_stack, indirect)
    (
        wp_pos,
        wp_page,
        wp_line,
        calls,
        returns,
        indirect_branches,
        indirect_mispredicts,
        branch_mispredicts,
    ) = ctrl
    n_mispredicts = len(wp_pos)

    # ------------------------------------------------------------- L1 passes
    lines_per_page = PAGE_BYTES // CACHE_LINE_BYTES

    with tracer.span("replay/itlb_pass", kind="replay"):
        # ITLB stream: warm code pages, then translate_inst lookups (one per
        # deduplicated instruction-page event) interleaved with the
        # non-mutating wrong-path probes, in program order.
        n_ipage = len(cols.ipage_pos)
        ev_pos = np.concatenate([cols.ipage_pos.astype(np.int64), wp_pos])
        ev_phase = np.concatenate(
            [np.zeros(n_ipage, np.int8), np.full(n_mispredicts, _PH_WP, np.int8)]
        )
        ev_intra = np.concatenate(
            [cols.ipage_intra.astype(np.int64), np.zeros(n_mispredicts, np.int64)]
        )
        order = _merge_order(ev_pos, ev_phase, ev_intra, np.zeros(len(ev_pos), np.int8))
        itlb_pages = np.concatenate([cols.ipage_page, wp_page])[order]
        itlb_mut = np.concatenate(
            [np.ones(n_ipage, bool), np.zeros(n_mispredicts, bool)]
        )[order]
        itlb_warm = _warm_memo(
            memo, "itlb", code_pages, state.tlb.itlb.n_sets, state.tlb.itlb.assoc
        )
        n_warm = len(itlb_warm)
        itlb_keys = np.concatenate([itlb_warm, itlb_pages])
        itlb_mut_full = np.concatenate([np.ones(n_warm, bool), itlb_mut])
        hits = _replay_memo(
            memo,
            ("itlb_replay", state.tlb.itlb.n_sets, state.tlb.itlb.assoc),
            (itlb_keys, itlb_mut_full),
            lambda: batch_tlb_replay(
                itlb_keys, state.tlb.itlb, mutating=itlb_mut_full
            ),
        )[n_warm:]
        unsorted_hits = np.empty(len(hits), dtype=bool)
        unsorted_hits[order] = hits
        ipage_hit = unsorted_hits[:n_ipage]
        wp_probe_hit = unsorted_hits[n_ipage:]
        itlb_misses = int(np.count_nonzero(~ipage_hit))

    with tracer.span("replay/l1i_pass", kind="replay"):
        # L1I stream: warm code lines, then fetch accesses (deduplicated
        # instruction-line events) interleaved with wrong-path fetches.
        n_iline = len(cols.iline_pos)
        ev_pos = np.concatenate([cols.iline_pos.astype(np.int64), wp_pos])
        ev_phase = np.concatenate(
            [np.full(n_iline, _PH_ILINE, np.int8), np.full(n_mispredicts, _PH_WP, np.int8)]
        )
        ev_intra = np.concatenate(
            [cols.iline_intra.astype(np.int64), np.zeros(n_mispredicts, np.int64)]
        )
        order = _merge_order(ev_pos, ev_phase, ev_intra, np.zeros(len(ev_pos), np.int8))
        l1i_lines = np.concatenate([cols.iline_line, wp_line])[order]
        l1i_warm = _warm_memo(
            memo, "l1i", code_lines, state.l1i.n_sets, state.l1i.assoc
        )
        n_warm = len(l1i_warm)
        l1i_keys = np.concatenate([l1i_warm, l1i_lines])
        res = _replay_memo(
            memo,
            ("l1i_replay", state.l1i.n_sets, state.l1i.assoc),
            (l1i_keys,),
            lambda: batch_lru_replay(l1i_keys, state.l1i.n_sets, state.l1i.assoc),
        )
        hits = res.hit[n_warm:]
        unsorted_hits = np.empty(len(hits), dtype=bool)
        unsorted_hits[order] = hits
        iline_hit = unsorted_hits[:n_iline]
        wp_l1i_hit = unsorted_hits[n_iline:]
        l1i_read_misses = int(np.count_nonzero(~hits))

    with tracer.span("replay/dtlb_pass", kind="replay"):
        dtlb_warm = _warm_memo(
            memo, ("dtlb", l2.size_bytes), data_pages,
            state.tlb.dtlb.n_sets, state.tlb.dtlb.assoc,
        )
        n_warm = len(dtlb_warm)
        dtlb_keys = np.concatenate([dtlb_warm, cols.mem_page])
        dtlb_hit = _replay_memo(
            memo,
            ("dtlb_replay", state.tlb.dtlb.n_sets, state.tlb.dtlb.assoc,
             l2.size_bytes),
            (dtlb_keys,),
            lambda: batch_tlb_replay(dtlb_keys, state.tlb.dtlb),
        )[n_warm:]
        dtlb_misses = int(np.count_nonzero(~dtlb_hit))

    with tracer.span("replay/l1d_pass", kind="replay"):
        l1d = state.l1d
        l1d_warm_c = _warm_memo(
            memo, ("l1d", l2.size_bytes), l1d_warm, l1d.n_sets, l1d.assoc
        )
        n_warm = len(l1d_warm_c)
        # The stream (and hence the memoised seed/op-index) is determined
        # by the trace plus the L2 capacity that sized the warm prefix.
        stream_key = (l2.size_bytes, n_warm)
        seed_key = ("l1d", l1d.n_sets, l1d.assoc, l1d.write_allocate,
                    l1d.write_streaming, stream_key)
        l1d_keys = np.concatenate([l1d_warm_c, cols.mem_line])
        l1d_writes = np.concatenate([np.zeros(n_warm, bool), cols.mem_write])

        def _run_l1d():
            res = batch_l1d_replay(
                l1d_keys,
                l1d_writes,
                n_warm,
                l1d,
                seed_streamed=cols.fixpoint_seeds.get(seed_key),
                aux_memo=cols.fixpoint_seeds.setdefault(
                    ("l1d_ctx", stream_key), {}
                ),
            )
            if not res.exhausted:
                cols.fixpoint_seeds[seed_key] = res.streamed
            return res

        l1d_res = _replay_memo(
            memo,
            ("l1d_replay",) + seed_key[1:],
            (l1d_keys, l1d_writes),
            _run_l1d,
        )
        mem_hit = l1d_res.hit[n_warm:]
        mem_streamed = l1d_res.streamed[n_warm:]
        mem_wb = l1d_res.wrote_back[n_warm:]

    # --------------------------------------------------------- merged events
    with tracer.span("replay/merge_events", kind="replay"):
        merged = _build_merged_events(
            cols, lines_per_page,
            ipage_hit, iline_hit, dtlb_hit, mem_hit, mem_streamed, mem_wb,
            wp_pos, wp_page, wp_line, wp_probe_hit, wp_l1i_hit,
        )

    # ------------------------------------------------------------ merged walk
    with tracer.span("replay/l2_walk", kind="replay", events=len(merged[0])):
        batched = _replay_memo(
            memo,
            ("l2walk",),
            (merged[0], merged[1], merged[2], machine),
            lambda: _batch_l2(
                merged, machine, state, code_lines, code_pages, l2_warm,
                data_pages, cols.fixpoint_seeds,
            ),
        )
        if batched is not None:
            walk, l2_stats, l2_itlb_stats, l2_dtlb_stats = batched
        else:
            # Prefetch fixpoint exhausted: warm the real objects and take
            # the exact scalar walk.  Bit-exact, but worth a guard-visible
            # breadcrumb — an exhausted fixpoint on every replay of a trace
            # means its streaming seed never converges.
            tracer.event(
                "guard", guard_kind="fixpoint-exhausted",
                pass_name="l2_walk", workload=trace.name,
            )
            l2.warm_fill_many(code_lines)
            tlb.l2_itlb.fill_many(code_pages)
            if l2_warm is not None:
                l2.warm_fill_many(l2_warm)
                tlb.l2_dtlb.fill_many(data_pages)
            walk = _l2_walk(merged, machine, l2, l2_prefetcher, tlb)
            l2_stats = l2.stats
            l2_itlb_stats = tlb.l2_itlb.stats
            l2_dtlb_stats = tlb.l2_dtlb.stats
    (
        stall_icache,
        stall_itlb,
        stall_dcache,
        stall_dtlb,
        dram_reads,
        dram_writes,
        dram_weight,
        walks_inst,
        walks_data,
    ) = walk

    # ---------------------------------------------------------------- stats
    n_mem = len(cols.mem_line)
    mem_write = cols.mem_write
    write_misses = int(np.count_nonzero(~mem_hit & mem_write))
    streaming_stores = int(np.count_nonzero(mem_streamed))
    l1d_stats = CacheStats(
        read_accesses=int(np.count_nonzero(~mem_write)),
        write_accesses=int(np.count_nonzero(mem_write)),
        read_misses=int(np.count_nonzero(~mem_hit & ~mem_write)),
        write_misses=write_misses,
        write_refills=write_misses - streaming_stores,
        writebacks=int(np.count_nonzero(mem_wb)),
        streaming_stores=streaming_stores,
    )
    l1i_stats = CacheStats(
        read_accesses=n_iline + n_mispredicts, read_misses=l1i_read_misses
    )
    itlb_stats = TlbStats(
        lookups=n_ipage, hits=n_ipage - itlb_misses, misses=itlb_misses
    )
    dtlb_stats = TlbStats(
        lookups=n_mem, hits=n_mem - dtlb_misses, misses=dtlb_misses
    )

    cond_mispredicts = int(np.count_nonzero(cond_miss))

    result = _finalise(
        trace,
        machine,
        l1i_stats=l1i_stats,
        l1d_stats=l1d_stats,
        l2_stats=l2_stats,
        itlb_stats=itlb_stats,
        dtlb_stats=dtlb_stats,
        l2_itlb_stats=l2_itlb_stats,
        l2_dtlb_stats=l2_dtlb_stats,
        walks_inst=walks_inst,
        walks_data=walks_data,
        ras_incorrect=ras.incorrect,
        branch_mispredicts=branch_mispredicts,
        cond_branches=len(cols.cond_pos),
        cond_mispredicts=cond_mispredicts,
        returns=returns,
        calls=calls,
        indirect_branches=indirect_branches,
        indirect_mispredicts=indirect_mispredicts,
        wrongpath_instructions=machine.wrongpath_fetch * n_mispredicts,
        itlb_wrongpath_misses=int(np.count_nonzero(~wp_probe_hit)),
        l1i_fetch_accesses=n_iline + n_mispredicts,
        dram_reads=dram_reads,
        dram_writes=dram_writes,
        stalls={
            "branch": _repeated_sum(machine.mispredict_penalty, n_mispredicts),
            "icache": stall_icache,
            "itlb": stall_itlb,
            "dcache": stall_dcache,
            "dtlb": stall_dtlb,
        },
        dram_weight=dram_weight,
    )
    if tracer.enabled:
        # Deterministic per-pass cycle attribution: every attribute is a
        # pure function of (trace, machine), so traced replays keep
        # deterministic span shapes (no wall-clock in the identity).
        from repro.obs.prof import attribute_cycles

        tracer.event(
            "replay-profile",
            kind="profile",
            workload=trace.name,
            machine=machine.name,
            core_cycles=result.core_cycles,
            cycles_by_pass=attribute_cycles(result.components),
        )
    return result


def _control_pass(trace, machine, cols, cond_miss, ras, shadow_stack, indirect):
    """Sparse scalar walk over control blocks that share speculative state.

    Only calls, returns, indirect branches and mispredicted conditionals
    touch the RAS / shadow stack / indirect predictor / LCG, so the walk
    visits a small fraction of the dynamic blocks.  Produces the
    wrong-path fetch schedule (position, page, line per misprediction)
    plus the control-flow counters.
    """
    class_seq = cols.class_seq
    ctrl_mask = class_seq > _CLS_RANDOM
    is_cond_ctrl = np.zeros(len(ctrl_mask), dtype=bool)
    mis_pos = cols.cond_pos[cond_miss]
    is_cond_ctrl[mis_pos] = True
    walk_positions = np.flatnonzero(ctrl_mask | is_cond_ctrl)

    lcg = (trace.seed ^ (zlib.crc32(machine.name.encode()) & _LCG_MASK)) or 1
    far_fraction = machine.wrongpath_far_fraction
    ras_corruption = machine.ras_corruption
    indirect_corruption = machine.indirect_corruption
    code_pages = cols_code_pages = np.asarray(
        trace.replay_tables().code_pages, dtype=np.int64
    )
    n_code_pages = len(cols_code_pages)
    lines_per_page = PAGE_BYTES // CACHE_LINE_BYTES

    # Gather every walked column into python lists up front: the loop is
    # pure-python state tracking, and per-iteration numpy scalar indexing
    # would dominate it.
    pos_walk = walk_positions.tolist()
    cls_walk = class_seq[walk_positions].tolist()
    addr_walk = cols.addr_seq[walk_positions].tolist()
    target_walk = cols.target_seq[walk_positions].tolist()
    wp_near_walk = cols.wp_near_seq[walk_positions].tolist()
    code_pages_l = cols_code_pages.tolist()

    ras_push = ras.push
    ras_pop = ras.pop
    ras_corrupt = ras.corrupt
    shadow_push = shadow_stack.append
    shadow_pop = shadow_stack.pop
    indirect_predict = indirect.predict_and_update

    calls = returns = indirect_branches = indirect_mispredicts = 0
    branch_mispredicts = 0
    pending_indirect_corrupt = False
    wp_pos: list[int] = []
    wp_page: list[int] = []
    wp_line: list[int] = []

    for pos, cls, addr, target, wp_near in zip(
        pos_walk, cls_walk, addr_walk, target_walk, wp_near_walk
    ):
        if cls <= _CLS_RANDOM:
            mispredicted = True  # walk only visits mispredicted conditionals
        elif cls == _CLS_CALL:
            calls += 1
            ras_push(addr)
            shadow_push(addr)
            continue
        elif cls == _CLS_RETURN:
            returns += 1
            expected = shadow_pop() if shadow_stack else -1
            mispredicted = not ras_pop(expected)
            if not mispredicted:
                continue
        else:  # INDIRECT
            indirect_branches += 1
            correct = indirect_predict(addr, target)
            if pending_indirect_corrupt:
                correct = False
                pending_indirect_corrupt = False
            if correct:
                continue
            indirect_mispredicts += 1
            mispredicted = True

        branch_mispredicts += 1
        lcg = (lcg * _LCG_MULT + _LCG_ADD) & _LCG_MASK
        uniform = lcg / _LCG_MASK
        if uniform < far_fraction and n_code_pages > 1:
            lcg = (lcg * _LCG_MULT + _LCG_ADD) & _LCG_MASK
            page = code_pages_l[lcg % n_code_pages] + 1 + (lcg % 7)
        else:
            page = wp_near
        wp_pos.append(pos)
        wp_page.append(page)
        wp_line.append(page * lines_per_page + (lcg % 8))

        lcg = (lcg * _LCG_MULT + _LCG_ADD) & _LCG_MASK
        if lcg / _LCG_MASK < ras_corruption:
            ras_corrupt()
        lcg = (lcg * _LCG_MULT + _LCG_ADD) & _LCG_MASK
        if lcg / _LCG_MASK < indirect_corruption:
            pending_indirect_corrupt = True

    return (
        np.asarray(wp_pos, dtype=np.int64),
        np.asarray(wp_page, dtype=np.int64),
        np.asarray(wp_line, dtype=np.int64),
        calls,
        returns,
        indirect_branches,
        indirect_mispredicts,
        branch_mispredicts,
    )


def _build_merged_events(
    cols, lines_per_page,
    ipage_hit, iline_hit, dtlb_hit, mem_hit, mem_streamed, mem_wb,
    wp_pos, wp_page, wp_line, wp_probe_hit, wp_l1i_hit,
):
    """Assemble the ordered L2-facing event stream for the merged walk.

    Every event that can touch the L2, the L2 TLBs or the prefetcher — or
    that accumulates an order-sensitive float — becomes one row, keyed by
    (dynamic position, phase, intra-phase index, sub-step) so the walk
    visits them in exactly the scalar engine's order.
    """
    kinds, poss, phases, intras, subs, arg0s, arg1s = [], [], [], [], [], [], []

    def add(kind, pos, phase, intra, sub, arg0, arg1=None):
        n = len(pos)
        kinds.append(np.full(n, kind, np.int8))
        poss.append(pos.astype(np.int64))
        phases.append(np.full(n, phase, np.int8))
        intras.append(intra.astype(np.int64))
        subs.append(np.full(n, sub, np.int8))
        arg0s.append(arg0.astype(np.int64))
        arg1s.append(
            np.zeros(n, np.int64) if arg1 is None else arg1.astype(np.int64)
        )

    m = ~ipage_hit
    add(_EV_ITLB_MISS, cols.ipage_pos[m], _PH_IPAGE, cols.ipage_intra[m], 0,
        cols.ipage_page[m])
    m = ~iline_hit
    add(_EV_L1I_MISS, cols.iline_pos[m], _PH_ILINE, cols.iline_intra[m], 0,
        cols.iline_line[m])
    m = ~dtlb_hit
    add(_EV_DTLB_MISS, cols.mem_pos[m], _PH_DATA, cols.mem_intra[m], 0,
        cols.mem_page[m])
    m = mem_wb
    add(_EV_L1D_WB, cols.mem_pos[m], _PH_DATA, cols.mem_intra[m], 1,
        cols.mem_line[m])
    m = mem_streamed
    add(_EV_L1D_STREAM, cols.mem_pos[m], _PH_DATA, cols.mem_intra[m], 2,
        cols.mem_line[m])
    m = ~mem_hit & ~mem_streamed
    add(_EV_L1D_MISS, cols.mem_pos[m], _PH_DATA, cols.mem_intra[m], 2,
        cols.mem_line[m], cols.mem_write[m])
    m = ~wp_probe_hit
    zeros = np.zeros(int(np.count_nonzero(m)), np.int64)
    add(_EV_WP_TLB, wp_pos[m], _PH_WP, zeros, 0, wp_page[m])
    m = ~wp_l1i_hit
    zeros = np.zeros(int(np.count_nonzero(m)), np.int64)
    add(_EV_WP_L1I, wp_pos[m], _PH_WP, zeros, 1, wp_line[m])

    kind = np.concatenate(kinds)
    pos = np.concatenate(poss)
    phase = np.concatenate(phases)
    intra = np.concatenate(intras)
    sub = np.concatenate(subs)
    arg0 = np.concatenate(arg0s)
    arg1 = np.concatenate(arg1s)
    order = _merge_order(pos, phase, intra, sub)
    return kind[order], arg0[order], arg1[order]


def _replay_memo(memo, tag, inputs, compute):
    """Verified single-entry memo for a pure replay computation.

    ``inputs`` is a tuple of ndarrays (or plain comparable values, e.g. a
    frozen :class:`MachineConfig`) that fully determine ``compute()``'s
    result.  The cached result is only reused after an element-wise
    equality check of every input against the cached copy, so a stale or
    colliding entry can never alter results — it just recomputes.  Repeat
    replays of one trace (and sibling DVFS points, whose hit streams are
    identical) skip the heavy LRU/fixpoint work entirely.
    """
    if memo is None:
        return compute()
    entry = memo.get(tag)
    if entry is not None:
        cached, result = entry
        if len(cached) == len(inputs) and all(
            np.array_equal(a, b)
            if isinstance(a, np.ndarray) or isinstance(b, np.ndarray)
            else a == b
            for a, b in zip(cached, inputs)
        ):
            return result
    result = compute()
    memo[tag] = (inputs, result)
    return result


def _warm_memo(memo, tag, seq, n_sets, assoc):
    """Memoised :func:`warm_content_rows` keyed on the trace's columnar memo.

    The compressed warm prefix is a pure function of the decoded trace and
    the structure geometry, so repeat replays (and sibling configs with the
    same geometry) reuse it instead of re-sorting the warm sequence.
    """
    key = ("warm", tag, n_sets, assoc)
    rows = memo.get(key)
    if rows is None:
        rows = warm_content_rows(seq, n_sets, assoc)
        memo[key] = rows
    return rows


def _tlb_batch_hits(geom, warm_pages, pages, memo=None, tag=None):
    """Batch one L2-TLB lookup stream; returns per-lookup hit flags.

    ``lookup`` always inserts on miss, so every row mutates; the silent
    warm prefix is compressed to its closed-form final content first.
    """
    if memo is not None:
        warm_rows = _warm_memo(memo, tag, warm_pages, geom.n_sets, geom.assoc)
    else:
        warm_rows = warm_content_rows(warm_pages, geom.n_sets, geom.assoc)
    nw = len(warm_rows)
    keys = np.concatenate([warm_rows, pages])
    res = _replay_memo(
        memo,
        ("l2tlb_replay", tag, geom.n_sets, geom.assoc),
        (keys,),
        lambda: batch_lru_replay(keys, geom.n_sets, geom.assoc),
    )
    return res.hit[nw:]


def _derive_prefetches(trig_after, trig_lines, degree):
    """Clone of :class:`StridePrefetcher` over one round's trigger misses.

    ``trig_after``/``trig_lines`` are the static-row indices and lines of
    the demand misses that call ``train`` this round, in stream order.
    Returns the prefetch insertions they imply: for each issued prefetch,
    the static row it follows and the line it fills.
    """
    pf_after: list[int] = []
    pf_line: list[int] = []
    last_line = -1
    last_delta = 0
    confidence = 0
    for r, line in zip(trig_after, trig_lines):
        delta = line - last_line
        if delta == last_delta and delta != 0:
            confidence = min(confidence + 1, 4)
        else:
            confidence = 0
            last_delta = delta
        last_line = line
        if confidence >= 2:
            for i in range(1, degree + 1):
                pf_after.append(r)
                pf_line.append(line + last_delta * i)
    return np.asarray(pf_after, dtype=np.int64), np.asarray(pf_line, dtype=np.int64)


def _batch_l2(merged, machine: MachineConfig, state, code_lines, code_pages,
              l2_warm, data_pages, seeds, max_rounds: int = 40):
    """Batched replay of the L2-facing event stream.

    Resolves the L2 TLBs as straight LRU batches, then the shared L2 as an
    LRU batch around a prefetch fixpoint: guess the prefetcher's fill
    schedule, replay the demand stream with those fills interleaved,
    re-derive the schedule from the resulting miss outcomes, repeat until
    it reproduces itself.  As with the L1D streaming fixpoint, any
    fixpoint equals real execution and each round extends the exact
    prefix, so the iteration converges; ``None`` is returned if
    ``max_rounds`` is exhausted and the caller falls back to the scalar
    walk.  All float stalls/weights are accumulated with ``np.cumsum``
    over per-event cost slots, which is bitwise-identical to the scalar
    walk's ordered ``+=`` sequence.
    """
    kind, arg0, arg1 = merged
    n_ev = len(kind)
    l2 = state.l2
    tlb = state.tlb
    degree = state.l2_prefetcher.degree
    lines_per_page = PAGE_BYTES // CACHE_LINE_BYTES

    k_l1d = kind == _EV_L1D_MISS
    k_dtlb = kind == _EV_DTLB_MISS
    k_wb = kind == _EV_L1D_WB
    k_l1i = kind == _EV_L1I_MISS
    k_strm = kind == _EV_L1D_STREAM
    k_wptlb = kind == _EV_WP_TLB
    k_wpl1i = kind == _EV_WP_L1I
    k_itlb = kind == _EV_ITLB_MISS

    # ------------------------------------------------------------ L2 TLBs
    # Lookup streams are fully determined by the events; each structure is
    # one pure-LRU batch (lookups always insert on miss).
    unified = tlb.l2_itlb is tlb.l2_dtlb
    itlb_side = k_itlb | k_wptlb
    l2tlb_hit = np.zeros(n_ev, dtype=bool)
    if unified:
        mask = itlb_side | k_dtlb
        hits = _tlb_batch_hits(
            tlb.l2_itlb, np.concatenate([code_pages, data_pages]), arg0[mask],
            memo=seeds, tag=("l2tlb_u", l2.size_bytes),
        )
        l2tlb_hit[mask] = hits
        nlk = int(mask.sum(dtype=np.int64))
        nh = int(hits.sum(dtype=np.int64))
        l2_itlb_stats = l2_dtlb_stats = TlbStats(
            lookups=nlk, hits=nh, misses=nlk - nh
        )
    else:
        hits = _tlb_batch_hits(tlb.l2_itlb, code_pages, arg0[itlb_side],
                               memo=seeds, tag="l2tlb_i")
        l2tlb_hit[itlb_side] = hits
        nlk = int(itlb_side.sum(dtype=np.int64))
        nh = int(hits.sum(dtype=np.int64))
        l2_itlb_stats = TlbStats(lookups=nlk, hits=nh, misses=nlk - nh)
        hits = _tlb_batch_hits(tlb.l2_dtlb, data_pages, arg0[k_dtlb],
                               memo=seeds, tag=("l2tlb_d", l2.size_bytes))
        l2tlb_hit[k_dtlb] = hits
        nlk = int(k_dtlb.sum(dtype=np.int64))
        nh = int(hits.sum(dtype=np.int64))
        l2_dtlb_stats = TlbStats(lookups=nlk, hits=nh, misses=nlk - nh)

    walks_inst = int(np.count_nonzero(k_itlb & ~l2tlb_hit))
    walks_data = int(np.count_nonzero(k_dtlb & ~l2tlb_hit))

    # ------------------------------------------- static L2 demand stream
    walk_ev = (k_itlb | k_dtlb) & ~l2tlb_hit
    row_mask = k_l1d | k_wb | k_strm | k_l1i | k_wpl1i | walk_ev
    row_ev = np.flatnonzero(row_mask)
    row_kind = kind[row_ev]
    row_key = arg0[row_ev].copy()
    row_key[row_kind == _EV_L1D_WB] ^= 0x1
    is_walk_row = (row_kind == _EV_DTLB_MISS) | (row_kind == _EV_ITLB_MISS)
    row_key[is_walk_row] *= lines_per_page
    row_w = (
        (row_kind == _EV_L1D_WB)
        | (row_kind == _EV_L1D_STREAM)
        | ((row_kind == _EV_L1D_MISS) & (arg1[row_ev] != 0))
    )
    n_rows = len(row_key)
    trainable = (row_kind == _EV_L1D_MISS) | (row_kind == _EV_L1I_MISS)
    trig_rows = np.flatnonzero(trainable)

    if seeds is not None:
        wkey = ("warm", ("l2", l2.size_bytes), l2.n_sets, l2.assoc)
        warm_rows = seeds.get(wkey)
        if warm_rows is None:
            warm_seq = code_lines if l2_warm is None else np.concatenate(
                [code_lines, l2_warm]
            )
            warm_rows = warm_content_rows(warm_seq, l2.n_sets, l2.assoc)
            seeds[wkey] = warm_rows
    else:
        warm_seq = code_lines if l2_warm is None else np.concatenate(
            [code_lines, l2_warm]
        )
        warm_rows = warm_content_rows(warm_seq, l2.n_sets, l2.assoc)
    nw = len(warm_rows)

    # ------------------------------------------------- prefetch fixpoint
    seed_key = ("l2", l2.n_sets, l2.assoc, degree, n_rows)
    seeded = seeds.get(seed_key) if seeds is not None else None
    if degree == 0:
        pf_after = pf_line = np.empty(0, dtype=np.int64)
        pf_mut = np.empty(0, dtype=bool)
    elif seeded is not None:
        pf_after, pf_line, pf_mut = seeded
    else:
        pf_after = pf_line = np.empty(0, dtype=np.int64)
        pf_mut = np.empty(0, dtype=bool)

    res = None
    for _ in range(max_rounds):
        ins_at = pf_after + 1
        keys = np.concatenate([warm_rows, np.insert(row_key, ins_at, pf_line)])
        mut = np.concatenate(
            [np.ones(nw, bool), np.insert(np.ones(n_rows, bool), ins_at, pf_mut)]
        )
        w = np.concatenate(
            [np.zeros(nw, bool),
             np.insert(row_w, ins_at, np.zeros(len(pf_line), bool))]
        )
        res = _replay_memo(
            seeds,
            ("l2_round", l2.n_sets, l2.assoc),
            (keys, mut, w),
            lambda: batch_lru_replay(keys, l2.n_sets, l2.assoc, mutating=mut,
                                     is_write=w, track_writebacks=True),
        )
        if degree == 0:
            break
        # Positions of static / prefetch rows inside the interleaved batch.
        stat_pos = nw + np.arange(n_rows) + np.searchsorted(
            pf_after, np.arange(n_rows), side="left"
        )
        pf_pos = nw + pf_after + 1 + np.arange(len(pf_after))
        trig_hit = res.hit[stat_pos[trig_rows]]
        miss_trigs = trig_rows[~trig_hit]
        trig_lines = row_key[miss_trigs]
        new_after, new_line = _replay_memo(
            seeds,
            ("l2_pf_derive", degree),
            (miss_trigs, trig_lines),
            lambda: _derive_prefetches(
                miss_trigs.tolist(), trig_lines.tolist(), degree
            ),
        )
        # A prefetch already present in this round keeps its observed
        # presence; new ones are guessed absent (verified next round).
        new_mut = np.ones(len(new_line), dtype=bool)
        k = min(len(new_line), len(pf_line))
        if k:
            same = (new_after[:k] == pf_after[:k]) & (new_line[:k] == pf_line[:k])
            new_mut[:k][same] = ~res.hit[pf_pos[:k][same]]
        if (
            np.array_equal(new_after, pf_after)
            and np.array_equal(new_line, pf_line)
            and np.array_equal(new_mut, pf_mut)
        ):
            break
        pf_after, pf_line, pf_mut = new_after, new_line, new_mut
    else:
        return None  # fixpoint exhausted; caller takes the scalar walk
    if seeds is not None and degree:
        seeds[seed_key] = (pf_after, pf_line, pf_mut)

    # ------------------------------------------------- per-event outcomes
    n_pf = len(pf_line)
    stat_pos = nw + np.arange(n_rows) + np.searchsorted(
        pf_after, np.arange(n_rows), side="left"
    )
    pf_pos = nw + pf_after + 1 + np.arange(n_pf)
    stat_hit = res.hit[stat_pos]
    stat_wb = res.wrote_back[stat_pos]
    pf_wb = res.wrote_back[pf_pos]
    pf_filled = pf_mut  # mutating prefetch rows are exactly the fills

    l2_hit_ev = np.ones(n_ev, dtype=bool)
    l2_wb_ev = np.zeros(n_ev, dtype=bool)
    l2_hit_ev[row_ev] = stat_hit
    l2_wb_ev[row_ev] = stat_wb

    # --------------------------------------------------------- DRAM counts
    demand_read_miss = (
        (k_l1d | k_l1i | k_wpl1i | walk_ev) & ~l2_hit_ev & ~k_strm
    )
    dram_reads = int(np.count_nonzero(demand_read_miss & ~(k_strm | k_wb)))
    wb_counted = (k_l1d | k_wb | k_l1i | k_strm) & l2_wb_ev
    dram_writes = int(np.count_nonzero(wb_counted)) + int(
        np.count_nonzero(k_strm & ~l2_hit_ev)
    )

    # ------------------------------------------------------- stall cumsums
    l2_lat = machine.l2.latency
    l2tlb_lat = machine.tlb.l2_latency
    walk_cycles = machine.tlb.walk_cycles
    mem_overlap = machine.mem_overlap
    store_exposure = machine.store_miss_exposure
    dram_exposure = 1.0 - machine.dram_overlap

    icache_cost = l2_lat * 0.8
    dtlb_l2_cost = l2tlb_lat * (1.0 - mem_overlap)
    dtlb_walk_cost = walk_cycles * (1.0 - 0.5 * mem_overlap)
    stream_cost = l2_lat * 0.05
    write_cost = l2_lat * store_exposure
    read_cost = l2_lat * (1.0 - mem_overlap)
    write_weight = store_exposure * 0.5
    wp_walk_cost = walk_cycles * 0.5

    stall_icache = _repeated_sum(icache_cost, int(np.count_nonzero(k_l1i)))

    # stall_dcache: one unconditional term per L1D_MISS / L1D_STREAM event.
    dc_mask = k_l1d | k_strm
    dc = np.where(
        k_strm[dc_mask], stream_cost,
        np.where(arg1[dc_mask] != 0, write_cost, read_cost),
    )
    stall_dcache = float(np.cumsum(dc)[-1]) if len(dc) else 0.0

    # stall_dtlb: l2tlb term always, walk term on L2-TLB miss — two ordered
    # slots per event (adding the zero slots is bitwise-exact).
    nd = int(np.count_nonzero(k_dtlb))
    if nd:
        slots = np.zeros((nd, 2))
        slots[:, 0] = dtlb_l2_cost
        slots[~l2tlb_hit[k_dtlb], 1] = dtlb_walk_cost
        stall_dtlb = float(np.cumsum(slots.ravel())[-1])
    else:
        stall_dtlb = 0.0

    # stall_itlb: ITLB_MISS and WP_TLB events interleaved in stream order.
    it_mask = k_itlb | k_wptlb
    ni = int(np.count_nonzero(it_mask))
    if ni:
        slots = np.zeros((ni, 2))
        slots[:, 0] = l2tlb_lat
        tlb_missed = ~l2tlb_hit[it_mask]
        is_wp = k_wptlb[it_mask]
        slots[tlb_missed & ~is_wp, 1] = walk_cycles
        slots[tlb_missed & is_wp, 1] = wp_walk_cost
        stall_itlb = float(np.cumsum(slots.ravel())[-1])
    else:
        stall_itlb = 0.0

    # dram_weight: one term per weighted miss, in stream order.
    wvec = np.zeros(n_ev)
    m = k_l1d & ~l2_hit_ev
    wvec[m] = np.where(arg1[m] != 0, write_weight, dram_exposure)
    wvec[k_dtlb & walk_ev & ~l2_hit_ev] = 0.4
    wvec[k_l1i & ~l2_hit_ev] = 0.9
    wvec[k_strm & ~l2_hit_ev] = 0.12
    wvec[k_itlb & walk_ev & ~l2_hit_ev] = 0.5
    nz = wvec[wvec != 0.0]
    dram_weight = float(np.cumsum(nz)[-1]) if len(nz) else 0.0

    # ------------------------------------------------------------ L2 stats
    reads = int(np.count_nonzero(~row_w))
    writes = int(np.count_nonzero(row_w))
    read_misses = int(np.count_nonzero(~stat_hit & ~row_w))
    write_misses = int(np.count_nonzero(~stat_hit & row_w))
    # Replacements: per set, fills beyond the post-warm free space.
    alloc_keys = np.concatenate([row_key[~stat_hit], pf_line[pf_filled]])
    n_sets = l2.n_sets
    occ = np.bincount(warm_rows % n_sets, minlength=n_sets)
    allocs = np.bincount(alloc_keys % n_sets, minlength=n_sets)
    replacements = int(np.maximum(occ + allocs - l2.assoc, 0).sum())
    l2_stats = CacheStats(
        read_accesses=reads,
        write_accesses=writes,
        read_misses=read_misses,
        write_misses=write_misses,
        write_refills=write_misses,
        writebacks=int(np.count_nonzero(stat_wb)) + int(np.count_nonzero(pf_wb)),
        replacements=replacements,
        prefetches_issued=n_pf,
    )

    walk = (
        stall_icache,
        stall_itlb,
        stall_dcache,
        stall_dtlb,
        float(dram_reads),
        float(dram_writes),
        dram_weight,
        walks_inst,
        walks_data,
    )
    return walk, l2_stats, l2_itlb_stats, l2_dtlb_stats


def _l2_walk(merged, machine: MachineConfig, l2, l2_prefetcher, tlb):
    """Replay the L2-facing event stream in program order.

    The shared L2, the L2 TLBs and the stride prefetcher are genuinely
    order-sensitive (and the walk accumulates every inexact float term in
    scalar order), so this stays a Python loop — but over ~3% of the
    accesses the scalar engine touches.
    """
    kind_arr, arg0_arr, arg1_arr = merged

    l2_access = l2.access
    l2_itlb_lookup = tlb.l2_itlb.lookup
    l2_dtlb_lookup = tlb.l2_dtlb.lookup
    prefetch_train = l2_prefetcher.train

    l2_lat = machine.l2.latency
    l2tlb_lat = machine.tlb.l2_latency
    walk_cycles = machine.tlb.walk_cycles
    mem_overlap = machine.mem_overlap
    store_exposure = machine.store_miss_exposure
    dram_exposure = 1.0 - machine.dram_overlap
    lines_per_page = PAGE_BYTES // CACHE_LINE_BYTES

    icache_cost = l2_lat * 0.8
    dtlb_l2_cost = l2tlb_lat * (1.0 - mem_overlap)
    dtlb_walk_cost = walk_cycles * (1.0 - 0.5 * mem_overlap)
    stream_cost = l2_lat * 0.05
    write_cost = l2_lat * store_exposure
    read_cost = l2_lat * (1.0 - mem_overlap)
    write_weight = store_exposure * 0.5
    wp_walk_cost = walk_cycles * 0.5

    stall_icache = 0.0
    stall_itlb = 0.0
    stall_dcache = 0.0
    stall_dtlb = 0.0
    dram_reads = 0.0
    dram_writes = 0.0
    dram_weight = 0.0
    walks_inst = 0
    walks_data = 0

    for kind, arg0, arg1 in zip(
        kind_arr.tolist(), arg0_arr.tolist(), arg1_arr.tolist()
    ):
        if kind == _EV_L1D_MISS:
            if arg1:
                stall_dcache += write_cost
            else:
                stall_dcache += read_cost
            l2_hit, l2_wb, _ = l2_access(arg0, bool(arg1))
            if l2_wb:
                dram_writes += 1
            if not l2_hit:
                dram_reads += 1
                dram_weight += write_weight if arg1 else dram_exposure
                prefetch_train(arg0)
        elif kind == _EV_DTLB_MISS:
            stall_dtlb += dtlb_l2_cost
            if not l2_dtlb_lookup(arg0):
                walks_data += 1
                stall_dtlb += dtlb_walk_cost
                hit, _, _ = l2_access(arg0 * lines_per_page)
                if not hit:
                    dram_reads += 1
                    dram_weight += 0.4
        elif kind == _EV_L1D_WB:
            _, l2_wb, _ = l2_access(arg0 ^ 0x1, True)
            if l2_wb:
                dram_writes += 1
        elif kind == _EV_L1I_MISS:
            stall_icache += icache_cost
            l2_hit, wrote_back, _ = l2_access(arg0)
            if wrote_back:
                dram_writes += 1
            if not l2_hit:
                dram_reads += 1
                dram_weight += 0.9
                prefetch_train(arg0)
        elif kind == _EV_L1D_STREAM:
            stall_dcache += stream_cost
            l2_hit, l2_wb, _ = l2_access(arg0, True)
            if l2_wb:
                dram_writes += 1
            if not l2_hit:
                dram_writes += 1
                dram_weight += 0.12
        elif kind == _EV_WP_TLB:
            stall_itlb += l2tlb_lat
            if not l2_itlb_lookup(arg0):
                stall_itlb += wp_walk_cost
        elif kind == _EV_WP_L1I:
            l2_hit, _, _ = l2_access(arg0)
            if not l2_hit:
                dram_reads += 1
        else:  # _EV_ITLB_MISS
            stall_itlb += l2tlb_lat
            if not l2_itlb_lookup(arg0):
                walks_inst += 1
                stall_itlb += walk_cycles
                hit, _, _ = l2_access(arg0 * lines_per_page)
                if not hit:
                    dram_reads += 1
                    dram_weight += 0.5

    return (
        stall_icache,
        stall_itlb,
        stall_dcache,
        stall_dtlb,
        dram_reads,
        dram_writes,
        dram_weight,
        walks_inst,
        walks_data,
    )
