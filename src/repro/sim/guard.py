"""Runtime guardrails: self-verifying replay and supervised campaigns.

The columnar engine (:mod:`repro.sim.columnar`) is the default hot path
for every simulated cycle, and the paper's claims rest on those numbers
being bit-exact.  This module adds the runtime defenses that keep a corrupt
decoded column, a poisoned memo or a silent NaN in a vectorized pass from
flowing unchecked into the power model and validation tables:

* **Divergence sentinels** — :func:`guarded_simulate` deterministically
  samples a small fraction of jobs (seeded on the job ordinal) and replays
  them through *both* engines, comparing the results bit-exactly.  Any
  divergence, any NaN/overflow in the columnar result, or any failed
  decode contract triggers an automatic per-job fallback to
  ``engine="scalar"`` with a structured :class:`GuardEvent` — never a
  silent wrong number.
* **Decoded-form validation** — every cross-worker re-attach of a
  :class:`~repro.workloads.trace.ColumnarTrace` is checked against its
  checksum + shape/dtype/bounds contract
  (:func:`repro.workloads.trace.validate_columnar`); corrupt decodes are
  quarantined and re-decoded in place.
* **Campaign watchdog** — :class:`CampaignWatchdog` supervises a
  :class:`~repro.sim.executor.SimExecutor` batch with per-job heartbeats,
  memory/deadline budgets and poison-job detection: a job that kills N
  workers in a row is circuit-broken into the parent's serial quarantine
  lane instead of being resubmitted to (and killing) fresh pools forever.

Everything surfaces three ways: :class:`GuardEvent` records (absorbed into
:class:`~repro.core.validation.CollectionHealth` by dataset collection),
``sim.guard.*`` metrics in the shared registry, and tracer events — the
report's "Guardrails" section renders the accounting.

The guard never *changes* a correct result: both engines are bit-identical
by construction, so a clean campaign under ``--guard-level sentinel`` (the
default) produces byte-for-byte the same report as ``--guard-level off``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import monotonic

import numpy as np

from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, MetricView
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.machine import MachineConfig
from repro.workloads.trace import SyntheticTrace, validate_columnar

logger = get_logger(__name__)

#: Guard levels accepted by :class:`GuardPlan` and ``--guard-level``.
GUARD_LEVELS = ("off", "sentinel", "paranoid")

#: Default sentinel sampling interval (1 job in N is dual-replayed).  The
#: scalar reference replay costs 10-15x a steady-state columnar replay
#: (BENCH_replay.json), so the interval keeps sentinel-mode overhead on a
#: steady-state campaign under the 5% budget asserted by BENCH_guard.json.
SENTINEL_INTERVAL = 512

#: Marker key on ``ColumnarTrace.fixpoint_seeds`` recording that this
#: process already validated the decode (sentinel mode validates once per
#: re-attach; paranoid re-validates every replay).
_VALIDATED_KEY = ("guard", "validated")


@dataclass(frozen=True)
class GuardEvent:
    """One structured guardrail action (never a silent degradation).

    Attributes:
        kind: What was detected: ``divergence``, ``nan-result``,
            ``decode-corrupt``, ``engine-error``, ``poison-job``,
            ``worker-oom``, ``heartbeat-stall``, ``deadline``,
            ``memory-budget``, ``shard-lost``, ``lease-steal``.
        workload: Trace name of the affected job ("*" for campaign-wide
            watchdog events).
        machine: Machine name of the affected job ("*" likewise).
        action: What the guard did about it: ``fallback-scalar``,
            ``requarantine-decode``, ``circuit-break``, ``isolate``,
            ``observe``.
        detail: Human-readable specifics (mismatched fields, budget
            numbers, ...).
    """

    kind: str
    workload: str
    machine: str
    action: str
    detail: str = ""

    def summary(self) -> str:
        """One line for reports and logs."""
        line = f"[{self.kind}] {self.workload} on {self.machine} -> {self.action}"
        if self.detail:
            line += f" ({self.detail})"
        return line


@dataclass(frozen=True)
class GuardPlan:
    """Immutable, picklable guardrail configuration (ships to workers).

    Attributes:
        level: ``"off"`` (no guards), ``"sentinel"`` (sampled dual-engine
            verification + decode validation on re-attach, the default for
            pipeline runs) or ``"paranoid"`` (every job dual-replayed,
            decode re-validated on every replay).
        sentinel_interval: Sample 1 job in N for dual-engine verification;
            ``None`` resolves per level (``SENTINEL_INTERVAL`` for
            sentinel, 1 for paranoid).
        seed: Phase offset for the deterministic ordinal sampling.
        heartbeat_seconds: Watchdog: emit a ``heartbeat-stall`` event for
            any pooled job in flight longer than this (observation only —
            the executor's own timeout still owns cancellation).
        batch_deadline_seconds: Watchdog: emit a ``deadline`` event when a
            batch as a whole runs past this budget.
        memory_budget_mb: Watchdog: emit a ``memory-budget`` event when the
            parent's peak RSS exceeds this; workers check it before
            simulating and refuse (``MemoryError`` -> the job is isolated
            to the parent's serial lane) when already past it.
        poison_threshold: Circuit-break a job into the serial quarantine
            lane after it has killed this many workers.
    """

    level: str = "off"
    sentinel_interval: int | None = None
    seed: int = 0
    heartbeat_seconds: float | None = None
    batch_deadline_seconds: float | None = None
    memory_budget_mb: float | None = None
    poison_threshold: int = 2

    def __post_init__(self) -> None:
        if self.level not in GUARD_LEVELS:
            raise ValueError(
                f"unknown guard level {self.level!r}; expected one of {GUARD_LEVELS}"
            )
        if self.sentinel_interval is not None and self.sentinel_interval < 1:
            raise ValueError(
                f"sentinel_interval must be >= 1, got {self.sentinel_interval}"
            )
        if self.poison_threshold < 1:
            raise ValueError(
                f"poison_threshold must be >= 1, got {self.poison_threshold}"
            )

    # ------------------------------------------------------------ constructors
    @classmethod
    def off(cls) -> "GuardPlan":
        """No runtime guards (the engines' own verified memos remain)."""
        return cls(level="off")

    @classmethod
    def from_level(cls, level: str, **overrides) -> "GuardPlan":
        """Build a plan for a ``--guard-level`` name."""
        return cls(level=level, **overrides)

    # ---------------------------------------------------------------- queries
    @property
    def active(self) -> bool:
        return self.level != "off"

    @property
    def interval(self) -> int:
        """The resolved sentinel sampling interval."""
        if self.sentinel_interval is not None:
            return self.sentinel_interval
        return 1 if self.level == "paranoid" else SENTINEL_INTERVAL

    def samples(self, ordinal: int) -> bool:
        """Whether the job with this executor ordinal is sentinel-sampled.

        Seeded on the ordinal so the choice is deterministic across runs,
        identical between the pool and serial paths, and independent of
        scheduling order.
        """
        if not self.active:
            return False
        return (ordinal + self.seed) % self.interval == 0

    def supervises(self) -> bool:
        """Whether any watchdog budget needs the supervisor thread."""
        return self.active and (
            self.heartbeat_seconds is not None
            or self.batch_deadline_seconds is not None
            or self.memory_budget_mb is not None
        )


class GuardTelemetry(MetricView):
    """Guardrail counters, a view over the shared metrics registry.

    Attributes:
        sentinel_replays: Jobs dual-replayed through both engines.
        divergences: Sentinel comparisons that found a mismatch.
        nan_fallbacks: Columnar results rejected for NaN/overflow.
        decode_quarantines: Corrupt decodes quarantined and re-decoded.
        engine_errors: Columnar replays that raised and fell back.
        fallbacks: Total per-job fallbacks to the scalar engine.
        poison_jobs: Jobs circuit-broken into the serial quarantine lane.
        oom_events: Worker memory-budget breaches (injected or real).
        heartbeat_stalls: Jobs observed in flight past the heartbeat budget.
        deadline_breaches: Batches that ran past the deadline budget.
        memory_breaches: Parent peak-RSS budget breaches observed.
        shard_losses: Campaign shard processes that exited abnormally.
        lease_steals: Expired campaign leases taken over by another shard.
        events: All guard events recorded.
    """

    _fields = {
        name: f"sim.guard.{name}"
        for name in (
            "sentinel_replays",
            "divergences",
            "nan_fallbacks",
            "decode_quarantines",
            "engine_errors",
            "fallbacks",
            "poison_jobs",
            "oom_events",
            "heartbeat_stalls",
            "deadline_breaches",
            "memory_breaches",
            "shard_losses",
            "lease_steals",
            "events",
        )
    }


#: GuardEvent.kind -> GuardTelemetry counter attribute.
_KIND_COUNTERS = {
    "divergence": "divergences",
    "nan-result": "nan_fallbacks",
    "decode-corrupt": "decode_quarantines",
    "engine-error": "engine_errors",
    "poison-job": "poison_jobs",
    "worker-oom": "oom_events",
    "heartbeat-stall": "heartbeat_stalls",
    "deadline": "deadline_breaches",
    "memory-budget": "memory_breaches",
    "shard-lost": "shard_losses",
    "lease-steal": "lease_steals",
}

#: Event kinds that mean a job's columnar result was replaced by the
#: scalar reference result.
_FALLBACK_KINDS = frozenset({"divergence", "nan-result", "engine-error"})


class GuardRail:
    """Parent-side guardrail state for one executor's lifetime.

    Collects :class:`GuardEvent` records (worker-side events ship back
    in-band with results and are absorbed here), mirrors them into
    ``sim.guard.*`` metrics and tracer events, and owns the
    :class:`CampaignWatchdog`.
    """

    def __init__(
        self,
        plan: GuardPlan | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.plan = plan if plan is not None else GuardPlan.off()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.telemetry = GuardTelemetry(self.metrics)
        #: Every anomaly recorded over this executor's lifetime.
        self.events: list[GuardEvent] = []
        self.watchdog = CampaignWatchdog(self)

    @property
    def level(self) -> str:
        return self.plan.level

    def record(self, event: GuardEvent) -> None:
        """Absorb one guard event: list + metrics + tracer, atomically."""
        self.events.append(event)
        self.telemetry.events += 1
        counter = _KIND_COUNTERS.get(event.kind)
        if counter is not None:
            setattr(self.telemetry, counter, getattr(self.telemetry, counter) + 1)
        if event.kind in _FALLBACK_KINDS:
            self.telemetry.fallbacks += 1
        self.tracer.event(
            "guard",
            guard_kind=event.kind,
            workload=event.workload,
            machine=event.machine,
            action=event.action,
        )

    def absorb(self, events, sentinel_replays: int = 0) -> None:
        """Absorb a worker job's shipped-back guard outcome."""
        if sentinel_replays:
            self.telemetry.sentinel_replays += sentinel_replays
        for event in events or ():
            self.record(event)


def parent_rss_mb() -> float:
    """This process's peak RSS in MiB (0.0 where unavailable)."""
    try:
        import resource
    except ImportError:  # non-POSIX: budgets degrade to unenforced
        logger.debug("resource module unavailable; memory budget unenforced")
        return 0.0
    # ru_maxrss is KiB on Linux, bytes on macOS.
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    import sys

    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def check_memory_budget(plan: GuardPlan | None) -> None:
    """Refuse to start a worker job already past the memory budget.

    Raises:
        MemoryError: When the plan carries a ``memory_budget_mb`` and this
            process's peak RSS already exceeds it.  The executor treats the
            job like any poisoned job: it is isolated to the parent's
            serial lane (recorded as a ``worker-oom`` guard event) instead
            of running in a worker that the kernel may OOM-kill mid-write.
    """
    if plan is None or plan.memory_budget_mb is None:
        return
    rss = parent_rss_mb()
    if rss > plan.memory_budget_mb:
        raise MemoryError(
            f"worker peak RSS {rss:.0f} MiB exceeds the "
            f"{plan.memory_budget_mb:.0f} MiB guard budget"
        )


# ---------------------------------------------------------------------------
# Result integrity and bit-exact comparison
# ---------------------------------------------------------------------------

def compare_results(a, b) -> list[str]:
    """Bit-exact field comparison of two :class:`SimResult` objects.

    Returns human-readable mismatch descriptions (empty = identical).
    Float comparison is exact equality — "close" is exactly what the
    engines' bit-identity contract forbids settling for.
    """
    mismatches: list[str] = []

    def same(x, y) -> bool:
        if isinstance(x, float) and isinstance(y, float):
            return x == y or (np.isnan(x) and np.isnan(y))
        return x == y

    for attr in ("trace_name", "threads", "core_cycles", "dram_stall_weight"):
        if not same(getattr(a, attr), getattr(b, attr)):
            mismatches.append(
                f"{attr}: {getattr(a, attr)!r} != {getattr(b, attr)!r}"
            )
    for attr in ("counts", "components"):
        da, db = getattr(a, attr), getattr(b, attr)
        for key in sorted(set(da) | set(db)):
            if key not in da or key not in db:
                mismatches.append(f"{attr}[{key}]: present on one side only")
            elif not same(da[key], db[key]):
                mismatches.append(f"{attr}[{key}]: {da[key]!r} != {db[key]!r}")
    return mismatches


# ---------------------------------------------------------------------------
# Guarded simulation (runs in the parent's serial lane and inside workers)
# ---------------------------------------------------------------------------

def guarded_simulate(
    trace: SyntheticTrace,
    machine: MachineConfig,
    engine: str = "auto",
    plan: GuardPlan | None = None,
    faults=None,
    ordinal: int = 0,
    attempt: int = 1,
    tracer=NULL_TRACER,
):
    """Simulate one job with the guardrail checks of ``plan`` applied.

    The pure function both the executor's serial lane and its workers call
    (worker events ship back in-band, so nothing here touches process
    globals beyond the trace's own decode memo).

    Returns:
        ``(result, events, sentinel_replays)``: the (possibly
        scalar-fallback) :class:`~repro.sim.cpu.SimResult`, the
        :class:`GuardEvent` list (empty on the happy path), and how many
        sentinel dual-replays ran (0 or 1).

    The guard pipeline for a columnar replay:

    1. apply any columnar chaos faults from ``faults`` (tests only),
    2. validate the decoded form (checksum + contract) — corrupt decodes
       are quarantined and re-decoded before replay,
    3. replay; an engine exception falls back to scalar,
    4. reject NaN/overflow in the result (fallback to scalar),
    5. if this ordinal is sentinel-sampled, replay through the scalar
       reference engine too and compare bit-exactly; a divergence discards
       the columnar result *and* the trace's memos.
    """
    from repro.sim.cpu import simulate

    events: list[GuardEvent] = []
    if plan is None or not plan.active or engine == "scalar":
        return simulate(trace, machine, engine, tracer=tracer), events, 0

    tables = trace.replay_tables()
    cols = tables.columnar(trace)
    fired = (
        faults.columnar_faults(trace.name, attempt, ordinal)
        if faults is not None and hasattr(faults, "columnar_faults")
        else ()
    )
    if "corrupt-column" in fired:
        _corrupt_columns(cols)

    # --- decoded-form validation (every cross-worker re-attach) -----------
    if plan.level == "paranoid" or not cols.fixpoint_seeds.get(_VALIDATED_KEY):
        problems = validate_columnar(cols)
        if problems:
            events.append(
                GuardEvent(
                    kind="decode-corrupt",
                    workload=trace.name,
                    machine=machine.name,
                    action="requarantine-decode",
                    detail="; ".join(problems[:3]),
                )
            )
            tables._columnar = None
            cols = tables.columnar(trace)
        cols.fixpoint_seeds[_VALIDATED_KEY] = True

    if "poison-memo" in fired:
        _poison_memo(trace, machine, cols)

    # --- columnar replay, guarded against exceptions ----------------------
    result = None
    try:
        result = simulate(trace, machine, "columnar", tracer=tracer)
    except Exception as exc:
        events.append(
            GuardEvent(
                kind="engine-error",
                workload=trace.name,
                machine=machine.name,
                action="fallback-scalar",
                detail=f"{type(exc).__name__}: {exc}",
            )
        )
        _quarantine_decode(tables, cols)
        return simulate(trace, machine, "scalar"), events, 0

    if "nan-pass" in fired:
        # Chaos: as if a vectorized pass leaked a NaN into the accounting.
        result.core_cycles = float("nan")

    # --- NaN/overflow rejection ------------------------------------------
    problems = result.integrity_problems()
    if problems:
        events.append(
            GuardEvent(
                kind="nan-result",
                workload=trace.name,
                machine=machine.name,
                action="fallback-scalar",
                detail="; ".join(problems[:3]),
            )
        )
        _quarantine_decode(tables, cols)
        return simulate(trace, machine, "scalar"), events, 0

    # --- divergence sentinel ---------------------------------------------
    if plan.samples(ordinal):
        reference = simulate(trace, machine, "scalar")
        mismatches = compare_results(result, reference)
        if mismatches:
            events.append(
                GuardEvent(
                    kind="divergence",
                    workload=trace.name,
                    machine=machine.name,
                    action="fallback-scalar",
                    detail="; ".join(mismatches[:3]),
                )
            )
            _quarantine_decode(tables, cols)
            return reference, events, 1
        return result, events, 1

    return result, events, 0


def _quarantine_decode(tables, cols) -> None:
    """Discard a suspect decode and its memos; the next replay rebuilds."""
    cols.fixpoint_seeds.clear()
    tables._columnar = None


def _corrupt_columns(cols) -> None:
    """Chaos helper: flip bits in the decoded data-side columns in place."""
    if cols.mem_line.size:
        cols.mem_line[::3] ^= 0x15
    elif cols.iline_line.size:
        cols.iline_line[::3] ^= 0x15
    else:
        cols.block_seq[:] = cols.block_seq[::-1]


def _poison_memo(trace, machine, cols) -> None:
    """Chaos helper: scramble the decode's verified warm-row memos.

    Warm rows are consumed without per-use verification (they are pure
    functions of the decode), so a poisoned entry yields a silently
    divergent replay — exactly what the sentinel exists to catch.  The
    memo is reset and repopulated with one throwaway replay first, so the
    poisoned state (and the divergence the sentinel reports) is the same
    no matter what this process replayed before — decodes are shared
    process-wide by trace identity.
    """
    from repro.sim.cpu import simulate

    cols.fixpoint_seeds.clear()
    simulate(trace, machine, "columnar")
    for key, value in list(cols.fixpoint_seeds.items()):
        if (
            isinstance(key, tuple)
            and key
            and key[0] == "warm"
            and isinstance(value, np.ndarray)
            and value.size
        ):
            cols.fixpoint_seeds[key] = value + 1


# ---------------------------------------------------------------------------
# Campaign watchdog
# ---------------------------------------------------------------------------

class CampaignWatchdog:
    """Supervisor for an executor's batches: heartbeats, budgets, poison jobs.

    Observation never alters results: the supervisor thread only *records*
    (guard events + metrics) — cancellation stays with the executor's own
    deterministic timeout/retry machinery.  The one behavioural lever is
    the poison-job circuit breaker, and that decision is taken
    synchronously by the executor from deterministic kill counts, never
    from the thread.
    """

    _TICK_SECONDS = 0.02

    def __init__(self, rail: GuardRail):
        self.rail = rail
        self._lock = threading.Lock()
        self._in_flight: dict[int, tuple[str, str, float]] = {}
        self._stalled: set[int] = set()
        self._kills: dict[str, int] = {}
        self._broken: set[str] = set()
        self._batch_started: float | None = None
        self._batch_flagged = False
        self._memory_flagged = False
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    @property
    def plan(self) -> GuardPlan:
        return self.rail.plan

    # ------------------------------------------------------------- lifecycle
    def batch_started(self) -> None:
        """Begin supervising one ``run_many`` batch."""
        with self._lock:
            self._batch_started = monotonic()
            self._batch_flagged = False
            self._in_flight.clear()
            self._stalled.clear()
        if self.plan.supervises() and self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._supervise, name="guard-watchdog", daemon=True
            )
            self._thread.start()

    def batch_finished(self) -> None:
        """Stop the supervisor thread after a batch completes."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=2.0)
            self._thread = None
        with self._lock:
            self._batch_started = None
            self._in_flight.clear()

    # ---------------------------------------------------------- job tracking
    def job_started(self, ordinal: int, workload: str, machine: str) -> None:
        with self._lock:
            self._in_flight[ordinal] = (workload, machine, monotonic())

    def job_finished(self, ordinal: int) -> None:
        with self._lock:
            self._in_flight.pop(ordinal, None)

    # ------------------------------------------------------------ poison jobs
    def record_worker_kill(self, key: str) -> int:
        """Count one worker death attributed to the job ``key``."""
        self._kills[key] = self._kills.get(key, 0) + 1
        return self._kills[key]

    def is_poisoned(self, key: str) -> bool:
        """Whether this job has killed enough workers to be circuit-broken."""
        return self._kills.get(key, 0) >= self.plan.poison_threshold

    def circuit_break(self, workload: str, machine: str, key: str) -> None:
        """Record that a poisoned job was quarantined to the serial lane.

        One event per job key for the executor's lifetime — later batches
        route the job straight to the serial lane without re-announcing.
        """
        if key in self._broken:
            return
        self._broken.add(key)
        self.rail.record(
            GuardEvent(
                kind="poison-job",
                workload=workload,
                machine=machine,
                action="circuit-break",
                detail=(
                    f"killed {self._kills.get(key, 0)} worker(s); "
                    "quarantined to the parent's serial lane"
                ),
            )
        )

    # ------------------------------------------------------------- supervision
    def _supervise(self) -> None:
        plan = self.plan
        while not self._stop.wait(self._TICK_SECONDS):
            now = monotonic()
            # The RSS probe is a syscall, so take it outside the lock; all
            # shared flag/set state is read and written inside one critical
            # section, and events are recorded after it is released (the
            # rail takes its own lock — never hold both).
            rss = (
                parent_rss_mb() if plan.memory_budget_mb is not None else None
            )
            events: list[GuardEvent] = []
            with self._lock:
                started = self._batch_started
                flight = list(self._in_flight.items())
                if started is None:
                    continue
                if (
                    plan.batch_deadline_seconds is not None
                    and not self._batch_flagged
                    and now - started > plan.batch_deadline_seconds
                ):
                    self._batch_flagged = True
                    events.append(
                        GuardEvent(
                            kind="deadline",
                            workload="*",
                            machine="*",
                            action="observe",
                            detail=(
                                f"batch past its "
                                f"{plan.batch_deadline_seconds:.2f} s "
                                f"deadline with {len(flight)} job(s) in flight"
                            ),
                        )
                    )
                if plan.heartbeat_seconds is not None:
                    for ordinal, (workload, machine, job_started) in flight:
                        if (
                            ordinal not in self._stalled
                            and now - job_started > plan.heartbeat_seconds
                        ):
                            self._stalled.add(ordinal)
                            events.append(
                                GuardEvent(
                                    kind="heartbeat-stall",
                                    workload=workload,
                                    machine=machine,
                                    action="observe",
                                    detail=(
                                        f"no heartbeat for "
                                        f"{now - job_started:.2f} s "
                                        f"(budget {plan.heartbeat_seconds:.2f} s)"
                                    ),
                                )
                            )
                if (
                    rss is not None
                    and not self._memory_flagged
                    and plan.memory_budget_mb is not None
                    and rss > plan.memory_budget_mb
                ):
                    self._memory_flagged = True
                    events.append(
                        GuardEvent(
                            kind="memory-budget",
                            workload="*",
                            machine="*",
                            action="observe",
                            detail=(
                                f"parent peak RSS {rss:.0f} MiB over the "
                                f"{plan.memory_budget_mb:.0f} MiB budget"
                            ),
                        )
                    )
            for event in events:
                self.rail.record(event)
