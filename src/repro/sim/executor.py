"""Fault-tolerant parallel fan-out of independent simulation jobs.

GemStone is rerun constantly — after every model adjustment and every
simulator update (Section VII's workflow) — and a cold evaluation simulates
45–65 workloads on two machine configurations.  Every one of those jobs is a
pure function of its (trace, machine) pair, so they parallelise perfectly:
:class:`SimExecutor` fans a batch of jobs across a
:class:`~concurrent.futures.ProcessPoolExecutor` and guarantees results that
are bit-identical to running the same jobs serially.

The executor owns the whole memoisation *and* recovery story for a batch:

* **deduplication** — identical in-flight jobs (same cache key) are
  simulated once and the result shared across every requesting slot;
* **disk cache** — when built with a ``cache_dir``, jobs are probed against
  the :class:`~repro.sim.result_cache.SimResultCache` before any process is
  spawned; workers write their entries atomically and the parent *reaps*
  them from disk rather than shipping results back through the pipe;
* **fault isolation** — each job is submitted individually with an optional
  per-job timeout.  A timed-out, crashed or poisoned job is rerun serially
  in the parent under a deterministic :class:`RetryPolicy`; a broken pool
  (a hard worker death) loses only the jobs that had not finished — every
  completed sibling keeps its result.  Because jobs are pure, recovered
  results are bit-identical to a fault-free run;
* **serial fallback** — ``jobs=1`` (the default everywhere) never spawns a
  process, and a pool that cannot even be constructed (pickling-hostile
  environment) degrades to the serial path with the identical results;
* **telemetry** — a :class:`SimTelemetry` record counts jobs, hits,
  retries, timeouts and crashes, surfaced by
  :func:`repro.core.report.render_sim_telemetry` in the full report.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, Sequence

from repro.sim.cpu import SimResult, simulate
from repro.sim.machine import MachineConfig
from repro.sim.result_cache import SimResultCache, cache_key
from repro.workloads.trace import SyntheticTrace

#: One simulation job: the executor's unit of work.
SimJob = tuple[SyntheticTrace, MachineConfig]


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic bounded retry with exponential backoff (no jitter).

    Attributes:
        max_attempts: Total attempts per job (first try included).
        base_seconds: Delay before the first retry.
        backoff: Multiplier applied per further retry.
        cap_seconds: Upper bound on any single delay.
    """

    max_attempts: int = 3
    base_seconds: float = 0.05
    backoff: float = 2.0
    cap_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_seconds < 0 or self.cap_seconds < 0 or self.backoff < 1.0:
            raise ValueError("delays must be >= 0 and backoff >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retrying after failed attempt ``attempt`` (1-based)."""
        return min(self.base_seconds * self.backoff ** (attempt - 1), self.cap_seconds)


@dataclass
class SimJobFailure:
    """A job that exhausted its retry budget; the terminal per-job outcome."""

    trace_name: str
    machine_name: str
    attempts: int
    kind: str  # "timeout" | "crash" | "error"
    error: str


class SimJobError(RuntimeError):
    """Raised when a simulation job fails permanently.

    Attributes:
        failure: The :class:`SimJobFailure` describing the terminal outcome.
    """

    def __init__(self, failure: SimJobFailure):
        self.failure = failure
        super().__init__(
            f"simulation of {failure.trace_name} on {failure.machine_name} "
            f"failed permanently after {failure.attempts} attempt(s) "
            f"[{failure.kind}]: {failure.error}"
        )


@dataclass
class SimTelemetry:
    """Counters and per-stage wall-clock for one executor's lifetime.

    Attributes:
        jobs_submitted: Jobs requested across all ``run_many`` batches.
        jobs_deduplicated: Submitted jobs that were duplicates of another
            in-flight job in the same batch (simulated once, shared).
        cache_hits: Unique jobs answered from the disk cache.
        jobs_run: Unique jobs actually simulated (the cache misses).
        parallel_jobs_run: Subset of ``jobs_run`` completed on worker
            processes rather than in the parent.
        serial_fallbacks: Batches that degraded from the pool to the serial
            path before any job ran (pickling-hostile environment, pool
            construction failure).
        jobs_isolated: Jobs whose pool attempt failed (timeout, crash,
            error) and were rerun serially in the parent, leaving their
            finished siblings untouched.
        job_retries: Individual retry attempts across all jobs.
        job_timeouts: Pool attempts abandoned after the per-job timeout.
        worker_crashes: Broken-pool events (a worker process died).
        jobs_failed: Jobs that exhausted the retry budget.
        batches: ``run_many`` invocations.
        probe_seconds: Wall-clock spent deduplicating and probing the cache.
        simulate_seconds: Wall-clock spent simulating (pool or serial).
        reap_seconds: Wall-clock spent reaping worker-written cache entries
            and fanning results back to the submitted slots.
    """

    jobs_submitted: int = 0
    jobs_deduplicated: int = 0
    cache_hits: int = 0
    jobs_run: int = 0
    parallel_jobs_run: int = 0
    serial_fallbacks: int = 0
    jobs_isolated: int = 0
    job_retries: int = 0
    job_timeouts: int = 0
    worker_crashes: int = 0
    jobs_failed: int = 0
    batches: int = 0
    probe_seconds: float = 0.0
    simulate_seconds: float = 0.0
    reap_seconds: float = 0.0

    @property
    def wall_seconds(self) -> float:
        """Total wall-clock across all executor stages."""
        return self.probe_seconds + self.simulate_seconds + self.reap_seconds

    @property
    def cache_misses(self) -> int:
        """Unique jobs not answered by the disk cache."""
        return self.jobs_run

    def throughput(self) -> float:
        """Simulations per second of simulate-stage wall-clock."""
        if self.simulate_seconds <= 0.0:
            return 0.0
        return self.jobs_run / self.simulate_seconds


def _run_job(payload):
    """Worker-side entry point: simulate one job.

    ``payload`` is ``(trace, machine, cache_dir, faults, ordinal, attempt)``.
    Any fault matching (ordinal, attempt) fires first — a ``crash`` fault
    hard-kills this worker so the parent observes a genuine broken pool.

    With a cache directory the worker writes its entry atomically (via the
    cache's temp-file + rename protocol) and returns ``None`` so only a
    tiny token crosses the process boundary; the parent reaps the entry
    from disk.  Without a cache the result itself is returned in-band.
    """
    trace, machine, cache_dir, faults, ordinal, attempt = payload
    if faults is not None:
        faults.apply_job_fault(ordinal, trace.name, attempt, in_worker=True)
    result = simulate(trace, machine)
    if cache_dir is not None:
        SimResultCache(cache_dir, faults=faults).put(trace, machine, result)
        return None
    return result


class SimExecutor:
    """Fans independent simulation jobs across worker processes.

    Args:
        jobs: Worker-process count.  ``1`` (or fewer pending jobs than
            workers would help) runs serially in the parent; ``None`` uses
            ``os.cpu_count()``.
        cache_dir: Optional on-disk result cache shared by parent and
            workers; see :class:`~repro.sim.result_cache.SimResultCache`.
        retry: Per-job retry policy (deterministic, jitter-free).
        timeout_seconds: Optional per-job timeout for pool attempts; a job
            exceeding it is abandoned and rerun serially in the parent.
            Serial attempts are never interrupted.
        faults: Optional :class:`~repro.sim.faults.FaultPlan` injected into
            jobs and cache writes (chaos testing only).

    Raises:
        ValueError: For a non-positive explicit ``jobs`` or timeout.
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache_dir: str | None = None,
        retry: RetryPolicy | None = None,
        timeout_seconds: float | None = None,
        faults=None,
    ):
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ValueError(f"timeout_seconds must be positive, got {timeout_seconds}")
        self.jobs = int(jobs)
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeout_seconds = timeout_seconds
        self.faults = faults
        self.cache = (
            SimResultCache(cache_dir, faults=faults) if cache_dir is not None else None
        )
        self.telemetry = SimTelemetry()
        #: Terminal failures from the most recent ``run_many`` batch.
        self.last_failures: list[SimJobFailure] = []
        self._next_ordinal = 0

    # ------------------------------------------------------------------ public
    def run(self, trace: SyntheticTrace, machine: MachineConfig) -> SimResult:
        """Simulate one (trace, machine) job through the cache layers.

        Raises:
            SimJobError: If the job fails permanently (retry budget spent).
        """
        return self.run_many([(trace, machine)])[0]

    def run_many(
        self, pairs: Sequence[SimJob], raise_on_error: bool = True
    ) -> list[SimResult | None]:
        """Simulate a batch of jobs; results align with the input order.

        Identical jobs are simulated once; cached jobs are never simulated;
        the rest fan out across the pool (or run serially for ``jobs=1``).
        Results are bit-identical to calling :func:`~repro.sim.cpu.simulate`
        on each pair in a loop.

        Args:
            pairs: The (trace, machine) jobs.
            raise_on_error: With the default ``True``, a permanently failed
                job raises :class:`SimJobError` (after every other job has
                completed).  With ``False``, failed slots are returned as
                ``None`` so callers can degrade gracefully; inspect
                :attr:`last_failures` for the terminal outcomes.

        Raises:
            SimJobError: A job exhausted its retries (``raise_on_error``).
        """
        pairs = list(pairs)
        telemetry = self.telemetry
        telemetry.batches += 1
        telemetry.jobs_submitted += len(pairs)
        results: list[SimResult | None] = [None] * len(pairs)
        self.last_failures: list[SimJobFailure] = []

        started = perf_counter()
        # Deduplicate in-flight jobs: slots maps each unique cache key to
        # every submitted index wanting its result.
        slots: dict[str, list[int]] = {}
        for index, (trace, machine) in enumerate(pairs):
            slots.setdefault(cache_key(trace, machine), []).append(index)
        telemetry.jobs_deduplicated += len(pairs) - len(slots)

        pending: list[tuple[str, SyntheticTrace, MachineConfig]] = []
        for key, indices in slots.items():
            trace, machine = pairs[indices[0]]
            cached = self.cache.get(trace, machine) if self.cache else None
            if cached is not None:
                telemetry.cache_hits += 1
                for index in indices:
                    results[index] = cached
            else:
                pending.append((key, trace, machine))
        telemetry.probe_seconds += perf_counter() - started

        if pending:
            computed = self._execute(pending)
            started = perf_counter()
            for (key, _, _), outcome in zip(pending, computed):
                if isinstance(outcome, SimJobFailure):
                    self.last_failures.append(outcome)
                    continue
                for index in slots[key]:
                    results[index] = outcome
            telemetry.reap_seconds += perf_counter() - started
            if self.last_failures and raise_on_error:
                raise SimJobError(self.last_failures[0])
        return results

    # --------------------------------------------------------------- internals
    def _execute(
        self, pending: list[tuple[str, SyntheticTrace, MachineConfig]]
    ) -> list[SimResult | SimJobFailure]:
        self.telemetry.jobs_run += len(pending)
        ordinals = list(range(self._next_ordinal, self._next_ordinal + len(pending)))
        self._next_ordinal += len(pending)
        if self.jobs <= 1 or len(pending) <= 1:
            return self._execute_serial(pending, ordinals)
        return self._execute_pool(pending, ordinals)

    def _execute_pool(
        self,
        pending: list[tuple[str, SyntheticTrace, MachineConfig]],
        ordinals: list[int],
    ) -> list[SimResult | SimJobFailure]:
        telemetry = self.telemetry
        # A degraded cache cannot absorb worker writes; ship results in-band.
        cache_dir = (
            self.cache.directory
            if self.cache is not None and not self.cache.degraded
            else None
        )
        try:
            pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(pending)))
        except Exception:
            # Pickling-hostile environment: the jobs are pure, so running
            # serially gives the identical results.
            telemetry.serial_fallbacks += 1
            return self._execute_serial(pending, ordinals)

        started = perf_counter()
        in_band: dict[int, object] = {}
        failed_kind: dict[int, str] = {}
        failed_error: dict[int, str] = {}
        pool_broken = False
        try:
            try:
                futures = {
                    i: pool.submit(
                        _run_job,
                        (trace, machine, cache_dir, self.faults, ordinal, 1),
                    )
                    for i, ((_, trace, machine), ordinal) in enumerate(
                        zip(pending, ordinals)
                    )
                }
            except Exception:
                telemetry.serial_fallbacks += 1
                telemetry.simulate_seconds += perf_counter() - started
                return self._execute_serial(pending, ordinals)
            for i, future in futures.items():
                try:
                    in_band[i] = future.result(timeout=self.timeout_seconds)
                except concurrent.futures.TimeoutError:
                    telemetry.job_timeouts += 1
                    future.cancel()
                    failed_kind[i] = "timeout"
                    failed_error[i] = (
                        f"no result within {self.timeout_seconds} s"
                    )
                except BrokenProcessPool as exc:
                    if not pool_broken:
                        telemetry.worker_crashes += 1
                        pool_broken = True
                    failed_kind[i] = "crash"
                    failed_error[i] = str(exc) or "worker process died"
                except Exception as exc:  # a poisoned job's own exception
                    failed_kind[i] = "error"
                    failed_error[i] = f"{type(exc).__name__}: {exc}"
        finally:
            # Never block on a hung worker: abandoned processes finish (or
            # die) on their own; their cache writes are atomic and idempotent.
            pool.shutdown(wait=False, cancel_futures=True)
        telemetry.simulate_seconds += perf_counter() - started
        telemetry.parallel_jobs_run += len(in_band)

        outcomes: list[SimResult | SimJobFailure | None] = [None] * len(pending)
        started = perf_counter()
        for i, result in in_band.items():
            _, trace, machine = pending[i]
            if result is None and self.cache is not None:
                # The worker wrote the cache entry; reap it from disk.  A
                # corrupt entry is quarantined by the cache and comes back
                # as None.
                result = self.cache.get(trace, machine)
            if result is None:
                # Reap failed (entry evicted or corrupted underneath us) —
                # recompute in the parent; determinism makes this safe.
                result = simulate(trace, machine)
                if self.cache is not None:
                    self.cache.put(trace, machine, result)
            outcomes[i] = result
        telemetry.reap_seconds += perf_counter() - started

        if failed_kind:
            # Crash isolation: only the affected jobs rerun serially; every
            # finished sibling above keeps its result.
            indices = sorted(failed_kind)
            telemetry.jobs_isolated += len(indices)
            if self.retry.max_attempts <= 1:
                telemetry.jobs_failed += len(indices)
                for i in indices:
                    _, trace, machine = pending[i]
                    outcomes[i] = SimJobFailure(
                        trace_name=trace.name,
                        machine_name=machine.name,
                        attempts=1,
                        kind=failed_kind[i],
                        error=failed_error[i],
                    )
            else:
                recovered = self._execute_serial(
                    [pending[i] for i in indices],
                    [ordinals[i] for i in indices],
                    first_attempt=2,
                )
                for i, outcome in zip(indices, recovered):
                    outcomes[i] = outcome
        return outcomes  # type: ignore[return-value]  # every slot is filled

    def _execute_serial(
        self,
        pending: list[tuple[str, SyntheticTrace, MachineConfig]],
        ordinals: list[int],
        first_attempt: int = 1,
    ) -> list[SimResult | SimJobFailure]:
        started = perf_counter()
        results: list[SimResult | SimJobFailure] = []
        for (_, trace, machine), ordinal in zip(pending, ordinals):
            results.append(
                self._run_with_retry(trace, machine, ordinal, first_attempt)
            )
        self.telemetry.simulate_seconds += perf_counter() - started
        return results

    def _run_with_retry(
        self,
        trace: SyntheticTrace,
        machine: MachineConfig,
        ordinal: int,
        first_attempt: int,
    ) -> SimResult | SimJobFailure:
        """One job through the retry policy, in the parent process."""
        attempt = first_attempt
        while True:
            try:
                if self.faults is not None:
                    self.faults.apply_job_fault(
                        ordinal, trace.name, attempt, in_worker=False
                    )
                result = simulate(trace, machine)
            except Exception as exc:
                if attempt >= self.retry.max_attempts:
                    self.telemetry.jobs_failed += 1
                    return SimJobFailure(
                        trace_name=trace.name,
                        machine_name=machine.name,
                        attempts=attempt,
                        kind="crash",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                self.telemetry.job_retries += 1
                delay = self.retry.delay(attempt)
                if delay > 0:
                    time.sleep(delay)
                attempt += 1
                continue
            if self.cache is not None:
                self.cache.put(trace, machine, result)
            return result


def prime_engines(
    executor: SimExecutor,
    engines: Iterable,
    profiles: Iterable,
) -> int:
    """Batch-simulate workloads for several engines in one fan-out.

    ``engines`` are simulation front ends exposing the small batching
    protocol (``has_result`` / ``trace_for`` / ``machine`` /
    ``absorb_result``) — :class:`~repro.sim.platform.HardwarePlatform` and
    :class:`~repro.sim.gem5.Gem5Simulation`.  All missing (workload ×
    machine) jobs are submitted to the executor up front, so one pool
    services the hardware and model simulations together.

    Jobs that fail permanently are simply not absorbed: the owning engine
    retries them lazily on first use, and if they fail again the failure
    surfaces there (where dataset collection can record it and degrade
    gracefully) instead of aborting the whole batch here.

    Returns:
        The number of simulations submitted (0 when everything was already
        memoised on the engines).
    """
    jobs: list[SimJob] = []
    owners: list[tuple[object, str]] = []
    for engine in engines:
        for profile in profiles:
            if engine.has_result(profile.name):
                continue
            jobs.append((engine.trace_for(profile), engine.machine))
            owners.append((engine, profile.name))
    if not jobs:
        return 0
    for (engine, name), result in zip(
        owners, executor.run_many(jobs, raise_on_error=False)
    ):
        if result is not None:
            engine.absorb_result(name, result)
    return len(jobs)
