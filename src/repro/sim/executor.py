"""Parallel fan-out of independent (trace, machine) simulation jobs.

GemStone is rerun constantly — after every model adjustment and every
simulator update (Section VII's workflow) — and a cold evaluation simulates
45–65 workloads on two machine configurations.  Every one of those jobs is a
pure function of its (trace, machine) pair, so they parallelise perfectly:
:class:`SimExecutor` fans a batch of jobs across a
:class:`~concurrent.futures.ProcessPoolExecutor` and guarantees results that
are bit-identical to running the same jobs serially.

The executor owns the whole memoisation story for a batch:

* **deduplication** — identical in-flight jobs (same cache key) are
  simulated once and the result shared across every requesting slot;
* **disk cache** — when built with a ``cache_dir``, jobs are probed against
  the :class:`~repro.sim.result_cache.SimResultCache` before any process is
  spawned; workers write their entries atomically and the parent *reaps*
  them from disk rather than shipping results back through the pipe;
* **serial fallback** — ``jobs=1`` (the default everywhere) never spawns a
  process, and any pool failure (pickling-hostile environment, broken
  worker) degrades to the serial path with the identical results;
* **telemetry** — a :class:`SimTelemetry` record counts jobs, hits and
  per-stage wall-clock, surfaced by :func:`repro.core.report.
  render_sim_telemetry` in the full report.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, Sequence

from repro.sim.cpu import SimResult, simulate
from repro.sim.machine import MachineConfig
from repro.sim.result_cache import SimResultCache, cache_key
from repro.workloads.trace import SyntheticTrace

#: One simulation job: the executor's unit of work.
SimJob = tuple[SyntheticTrace, MachineConfig]


@dataclass
class SimTelemetry:
    """Counters and per-stage wall-clock for one executor's lifetime.

    Attributes:
        jobs_submitted: Jobs requested across all ``run_many`` batches.
        jobs_deduplicated: Submitted jobs that were duplicates of another
            in-flight job in the same batch (simulated once, shared).
        cache_hits: Unique jobs answered from the disk cache.
        jobs_run: Unique jobs actually simulated (the cache misses).
        parallel_jobs_run: Subset of ``jobs_run`` executed on worker
            processes rather than in the parent.
        serial_fallbacks: Batches that degraded from the pool to the serial
            path (pickling-hostile environment, broken pool).
        batches: ``run_many`` invocations.
        probe_seconds: Wall-clock spent deduplicating and probing the cache.
        simulate_seconds: Wall-clock spent simulating (pool or serial).
        reap_seconds: Wall-clock spent reaping worker-written cache entries
            and fanning results back to the submitted slots.
    """

    jobs_submitted: int = 0
    jobs_deduplicated: int = 0
    cache_hits: int = 0
    jobs_run: int = 0
    parallel_jobs_run: int = 0
    serial_fallbacks: int = 0
    batches: int = 0
    probe_seconds: float = 0.0
    simulate_seconds: float = 0.0
    reap_seconds: float = 0.0

    @property
    def wall_seconds(self) -> float:
        """Total wall-clock across all executor stages."""
        return self.probe_seconds + self.simulate_seconds + self.reap_seconds

    @property
    def cache_misses(self) -> int:
        """Unique jobs not answered by the disk cache."""
        return self.jobs_run

    def throughput(self) -> float:
        """Simulations per second of simulate-stage wall-clock."""
        if self.simulate_seconds <= 0.0:
            return 0.0
        return self.jobs_run / self.simulate_seconds


def _run_job(payload: tuple[SyntheticTrace, MachineConfig, str | None]):
    """Worker-side entry point: simulate one job.

    With a cache directory the worker writes its entry atomically (via the
    cache's temp-file + rename protocol) and returns ``None`` so only a
    tiny token crosses the process boundary; the parent reaps the entry
    from disk.  Without a cache the result itself is returned in-band.
    """
    trace, machine, cache_dir = payload
    result = simulate(trace, machine)
    if cache_dir is not None:
        SimResultCache(cache_dir).put(trace, machine, result)
        return None
    return result


class SimExecutor:
    """Fans independent simulation jobs across worker processes.

    Args:
        jobs: Worker-process count.  ``1`` (or fewer pending jobs than
            workers would help) runs serially in the parent; ``None`` uses
            ``os.cpu_count()``.
        cache_dir: Optional on-disk result cache shared by parent and
            workers; see :class:`~repro.sim.result_cache.SimResultCache`.

    Raises:
        ValueError: For a non-positive explicit ``jobs``.
    """

    def __init__(self, jobs: int | None = None, cache_dir: str | None = None):
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.cache = SimResultCache(cache_dir) if cache_dir is not None else None
        self.telemetry = SimTelemetry()

    # ------------------------------------------------------------------ public
    def run(self, trace: SyntheticTrace, machine: MachineConfig) -> SimResult:
        """Simulate one (trace, machine) job through the cache layers."""
        return self.run_many([(trace, machine)])[0]

    def run_many(self, pairs: Sequence[SimJob]) -> list[SimResult]:
        """Simulate a batch of jobs; results align with the input order.

        Identical jobs are simulated once; cached jobs are never simulated;
        the rest fan out across the pool (or run serially for ``jobs=1``).
        Results are bit-identical to calling :func:`~repro.sim.cpu.simulate`
        on each pair in a loop.
        """
        pairs = list(pairs)
        telemetry = self.telemetry
        telemetry.batches += 1
        telemetry.jobs_submitted += len(pairs)
        results: list[SimResult | None] = [None] * len(pairs)

        started = perf_counter()
        # Deduplicate in-flight jobs: slots maps each unique cache key to
        # every submitted index wanting its result.
        slots: dict[str, list[int]] = {}
        for index, (trace, machine) in enumerate(pairs):
            slots.setdefault(cache_key(trace, machine), []).append(index)
        telemetry.jobs_deduplicated += len(pairs) - len(slots)

        pending: list[tuple[str, SyntheticTrace, MachineConfig]] = []
        for key, indices in slots.items():
            trace, machine = pairs[indices[0]]
            cached = self.cache.get(trace, machine) if self.cache else None
            if cached is not None:
                telemetry.cache_hits += 1
                for index in indices:
                    results[index] = cached
            else:
                pending.append((key, trace, machine))
        telemetry.probe_seconds += perf_counter() - started

        if pending:
            computed = self._execute(pending)
            started = perf_counter()
            for (key, _, _), result in zip(pending, computed):
                for index in slots[key]:
                    results[index] = result
            telemetry.reap_seconds += perf_counter() - started
        return results  # type: ignore[return-value]  # every slot is filled

    # --------------------------------------------------------------- internals
    def _execute(
        self, pending: list[tuple[str, SyntheticTrace, MachineConfig]]
    ) -> list[SimResult]:
        telemetry = self.telemetry
        telemetry.jobs_run += len(pending)
        if self.jobs <= 1 or len(pending) <= 1:
            return self._execute_serial(pending)

        cache_dir = self.cache.directory if self.cache is not None else None
        payloads = [(trace, machine, cache_dir) for _, trace, machine in pending]
        started = perf_counter()
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(payloads))
            ) as pool:
                in_band = list(pool.map(_run_job, payloads))
        except Exception:
            # Pickling-hostile environment or a broken pool: the jobs are
            # pure, so rerunning serially gives the identical results.
            telemetry.serial_fallbacks += 1
            telemetry.simulate_seconds += perf_counter() - started
            return self._execute_serial(pending)
        telemetry.simulate_seconds += perf_counter() - started
        telemetry.parallel_jobs_run += len(pending)

        started = perf_counter()
        results: list[SimResult] = []
        for (_, trace, machine), result in zip(pending, in_band):
            if result is None and self.cache is not None:
                # The worker wrote the cache entry; reap it from disk.
                result = self.cache.get(trace, machine)
            if result is None:
                # Reap failed (entry evicted or corrupted underneath us) —
                # recompute in the parent; determinism makes this safe.
                result = simulate(trace, machine)
            results.append(result)
        telemetry.reap_seconds += perf_counter() - started
        return results

    def _execute_serial(
        self, pending: list[tuple[str, SyntheticTrace, MachineConfig]]
    ) -> list[SimResult]:
        started = perf_counter()
        results = []
        for _, trace, machine in pending:
            result = simulate(trace, machine)
            if self.cache is not None:
                self.cache.put(trace, machine, result)
            results.append(result)
        self.telemetry.simulate_seconds += perf_counter() - started
        return results


def prime_engines(
    executor: SimExecutor,
    engines: Iterable,
    profiles: Iterable,
) -> int:
    """Batch-simulate workloads for several engines in one fan-out.

    ``engines`` are simulation front ends exposing the small batching
    protocol (``has_result`` / ``trace_for`` / ``machine`` /
    ``absorb_result``) — :class:`~repro.sim.platform.HardwarePlatform` and
    :class:`~repro.sim.gem5.Gem5Simulation`.  All missing (workload ×
    machine) jobs are submitted to the executor up front, so one pool
    services the hardware and model simulations together.

    Returns:
        The number of simulations submitted (0 when everything was already
        memoised on the engines).
    """
    jobs: list[SimJob] = []
    owners: list[tuple[object, str]] = []
    for engine in engines:
        for profile in profiles:
            if engine.has_result(profile.name):
                continue
            jobs.append((engine.trace_for(profile), engine.machine))
            owners.append((engine, profile.name))
    if not jobs:
        return 0
    for (engine, name), result in zip(owners, executor.run_many(jobs)):
        engine.absorb_result(name, result)
    return len(jobs)
