"""Fault-tolerant parallel fan-out of independent simulation jobs.

GemStone is rerun constantly — after every model adjustment and every
simulator update (Section VII's workflow) — and a cold evaluation simulates
45–65 workloads on two machine configurations.  Every one of those jobs is a
pure function of its (trace, machine) pair, so they parallelise perfectly:
:class:`SimExecutor` fans a batch of jobs across a
:class:`~concurrent.futures.ProcessPoolExecutor` and guarantees results that
are bit-identical to running the same jobs serially.

The executor owns the whole memoisation *and* recovery story for a batch:

* **deduplication** — identical in-flight jobs (same cache key) are
  simulated once and the result shared across every requesting slot;
* **disk cache** — when built with a ``cache_dir``, jobs are probed against
  the :class:`~repro.sim.result_cache.SimResultCache` before any process is
  spawned; workers write their entries atomically and the parent *reaps*
  them from disk rather than shipping results back through the pipe;
* **fault isolation** — each job is submitted individually with an optional
  per-job timeout.  A timed-out, crashed or poisoned job is rerun serially
  in the parent under a deterministic :class:`RetryPolicy`; a broken pool
  (a hard worker death) loses only the jobs that had not finished — every
  completed sibling keeps its result.  Because jobs are pure, recovered
  results are bit-identical to a fault-free run;
* **serial fallback** — ``jobs=1`` (the default everywhere) never spawns a
  process, and a pool that cannot even be constructed (pickling-hostile
  environment) degrades to the serial path with the identical results;
* **observability** — job accounting lives in a
  :class:`~repro.obs.metrics.MetricsRegistry` (:class:`SimTelemetry` is a
  thin view over it, surfaced by
  :func:`repro.core.report.render_sim_telemetry` in the full report), and
  an optional :class:`~repro.obs.tracer.Tracer` records per-batch and
  per-job spans — including spans recorded *inside* worker processes,
  shipped back with the results and stitched into the parent tree.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, Sequence

from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, MetricView
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.cpu import ENGINES, SimResult
from repro.sim.guard import (
    GuardEvent,
    GuardPlan,
    GuardRail,
    check_memory_budget,
    guarded_simulate,
)
from repro.sim.machine import MachineConfig
from repro.sim.result_cache import (
    SimResultCache,
    cache_key,
    cache_spec,
    open_cache_spec,
)
from repro.workloads.trace import SyntheticTrace

logger = get_logger(__name__)

#: One simulation job: the executor's unit of work.
SimJob = tuple[SyntheticTrace, MachineConfig]

#: Exponent bound for :meth:`RetryPolicy.delay`.  ``2.0 ** 62`` already
#: dwarfs any sane cap, while an unbounded ``2.0 ** attempt`` raises
#: OverflowError once campaign lease re-queues push attempt counts into
#: the thousands.
_MAX_BACKOFF_EXPONENT = 62


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic bounded retry with exponential backoff (no jitter).

    Attributes:
        max_attempts: Total attempts per job (first try included).
        base_seconds: Delay before the first retry.
        backoff: Multiplier applied per further retry.
        cap_seconds: Upper bound on any single delay.
    """

    max_attempts: int = 3
    base_seconds: float = 0.05
    backoff: float = 2.0
    cap_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_seconds < 0 or self.cap_seconds < 0 or self.backoff < 1.0:
            raise ValueError("delays must be >= 0 and backoff >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retrying after failed attempt ``attempt`` (1-based).

        The exponent is bounded so pathological attempt counts (campaign
        lease re-queues) saturate at ``cap_seconds`` instead of raising
        OverflowError from the float power.
        """
        exponent = min(attempt - 1, _MAX_BACKOFF_EXPONENT)
        return min(self.base_seconds * self.backoff**exponent, self.cap_seconds)


@dataclass
class SimJobFailure:
    """A job that exhausted its retry budget; the terminal per-job outcome."""

    trace_name: str
    machine_name: str
    attempts: int
    kind: str  # "timeout" | "crash" | "error" | "oom"
    error: str


class SimJobError(RuntimeError):
    """Raised when a simulation job fails permanently.

    Attributes:
        failure: The :class:`SimJobFailure` describing the terminal outcome.
    """

    def __init__(self, failure: SimJobFailure):
        self.failure = failure
        super().__init__(
            f"simulation of {failure.trace_name} on {failure.machine_name} "
            f"failed permanently after {failure.attempts} attempt(s) "
            f"[{failure.kind}]: {failure.error}"
        )


class SimTelemetry(MetricView):
    """Counters and per-stage wall-clock for one executor's lifetime.

    Since the ``repro.obs`` unification this is a *view* over a
    :class:`~repro.obs.metrics.MetricsRegistry` (the single source of
    truth, exported by the Prometheus snapshot); every attribute below
    reads — and ``+=`` writes — the ``sim.executor.*`` counter of the
    same name, so the legacy API is unchanged.

    Attributes:
        jobs_submitted: Jobs requested across all ``run_many`` batches.
        jobs_deduplicated: Submitted jobs that were duplicates of another
            in-flight job in the same batch (simulated once, shared).
        cache_hits: Unique jobs answered from the disk cache.
        jobs_run: Unique jobs actually simulated (the cache misses).
        parallel_jobs_run: Subset of ``jobs_run`` completed on worker
            processes rather than in the parent.
        serial_fallbacks: Batches that degraded from the pool to the serial
            path before any job ran (pickling-hostile environment, pool
            construction failure).
        jobs_isolated: Jobs whose pool attempt failed (timeout, crash,
            error) and were rerun serially in the parent, leaving their
            finished siblings untouched.
        job_retries: Individual retry attempts across all jobs.
        job_timeouts: Pool attempts abandoned after the per-job timeout.
        worker_crashes: Broken-pool events (a worker process died).
        jobs_failed: Jobs that exhausted the retry budget.
        batches: ``run_many`` invocations.
        probe_seconds: Wall-clock spent deduplicating and probing the cache.
        simulate_seconds: Wall-clock spent simulating (pool or serial).
        reap_seconds: Wall-clock spent reaping worker-written cache entries
            and fanning results back to the submitted slots.
    """

    _fields = {
        name: f"sim.executor.{name}"
        for name in (
            "jobs_submitted",
            "jobs_deduplicated",
            "cache_hits",
            "jobs_run",
            "parallel_jobs_run",
            "serial_fallbacks",
            "jobs_isolated",
            "job_retries",
            "job_timeouts",
            "worker_crashes",
            "jobs_failed",
            "batches",
            "probe_seconds",
            "simulate_seconds",
            "reap_seconds",
        )
    }

    @property
    def wall_seconds(self) -> float:
        """Total wall-clock across all executor stages."""
        return self.probe_seconds + self.simulate_seconds + self.reap_seconds

    @property
    def cache_misses(self) -> int:
        """Unique jobs not answered by the disk cache."""
        return self.jobs_run

    def throughput(self) -> float:
        """Simulations per second of simulate-stage wall-clock."""
        if self.simulate_seconds <= 0.0:
            return 0.0
        return self.jobs_run / self.simulate_seconds


def _run_job(payload):
    """Worker-side entry point: simulate one job.

    ``payload`` is ``(trace, machine, spec, faults, ordinal, attempt,
    want_spans, engine, guard_plan)``.  Any fault matching (ordinal,
    attempt) fires first — a ``crash`` fault hard-kills this worker so the
    parent observes a genuine broken pool, and a guard memory budget
    already breached refuses the job with ``MemoryError`` (the parent
    isolates it to the serial lane).

    With a cache spec (see :func:`~repro.sim.result_cache.cache_spec` —
    flat directory or campaign sharded store) the worker writes its entry
    atomically (via the cache's temp-file + rename protocol) and ships
    only a tiny token across the process boundary; the parent reaps the
    entry from disk.  Without a cache the result itself is returned
    in-band.  Either way the return value is a ``(token_or_result,
    span_records, guard_payload)`` triple: when the parent traces, the
    worker records its own child spans on a throwaway tracer and the
    parent stitches them into its tree, and ``guard_payload =
    (guard_events, sentinel_replays)`` ships the guardrail outcome back
    for the parent's :class:`GuardRail` to absorb.
    """
    (trace, machine, spec, faults, ordinal, attempt, want_spans,
     engine, guard_plan) = payload
    tracer = Tracer(enabled=want_spans)
    with tracer.span(
        "sim-job",
        kind="job",
        workload=trace.name,
        machine=machine.name,
        ordinal=ordinal,
        attempt=attempt,
        in_worker=True,
    ):
        if faults is not None:
            faults.apply_job_fault(ordinal, trace.name, attempt, in_worker=True)
        check_memory_budget(guard_plan)
        result, guard_events, sentinels = guarded_simulate(
            trace, machine, engine, guard_plan, faults, ordinal, attempt,
            tracer=tracer,
        )
        if spec is not None:
            with tracer.span("cache-put", kind="cache"):
                open_cache_spec(spec, faults=faults).put(
                    trace, machine, result
                )
            result = None
    return (
        result,
        (tracer.records if want_spans else None),
        (tuple(guard_events), sentinels),
    )


class SimExecutor:
    """Fans independent simulation jobs across worker processes.

    Args:
        jobs: Worker-process count.  ``1`` (or fewer pending jobs than
            workers would help) runs serially in the parent; ``None`` uses
            ``os.cpu_count()``.
        cache_dir: Optional on-disk result cache shared by parent and
            workers; see :class:`~repro.sim.result_cache.SimResultCache`.
        cache: Optional prebuilt cache object (a
            :class:`~repro.sim.result_cache.SimResultCache` or a campaign
            :class:`~repro.sim.result_cache.ShardedResultStore`); takes
            precedence over ``cache_dir``.  Workers rebuild an equivalent
            writer from its :func:`~repro.sim.result_cache.cache_spec`.
        retry: Per-job retry policy (deterministic, jitter-free).
        timeout_seconds: Optional per-job timeout for pool attempts; a job
            exceeding it is abandoned and rerun serially in the parent.
            Serial attempts are never interrupted.
        faults: Optional :class:`~repro.sim.faults.FaultPlan` injected into
            jobs and cache writes (chaos testing only).
        tracer: Optional :class:`~repro.obs.tracer.Tracer`; when enabled,
            batches, cache probes/reaps and every job (worker-side
            included) record spans.  Defaults to the shared disabled
            tracer, whose per-span cost is one attribute check.
        metrics: Shared :class:`~repro.obs.metrics.MetricsRegistry`; one
            is created privately when not given.  :attr:`telemetry` (and
            the cache's) are views over it.
        guard: Optional :class:`~repro.sim.guard.GuardPlan`; defaults to
            guards off.  When active, every simulated job runs through
            :func:`~repro.sim.guard.guarded_simulate` (decode validation,
            NaN rejection, sampled dual-engine sentinels with scalar
            fallback), the campaign watchdog supervises batches, and
            poisoned jobs (``poison_threshold`` worker kills) are
            circuit-broken into the parent's serial lane.  Guard events
            accumulate on :attr:`guard` (a
            :class:`~repro.sim.guard.GuardRail`).

    Raises:
        ValueError: For a non-positive explicit ``jobs`` or timeout.
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache_dir: str | None = None,
        cache=None,
        retry: RetryPolicy | None = None,
        timeout_seconds: float | None = None,
        faults=None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        engine: str = "auto",
        guard: GuardPlan | None = None,
    ):
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ValueError(f"timeout_seconds must be positive, got {timeout_seconds}")
        self.jobs = int(jobs)
        self.engine = engine
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeout_seconds = timeout_seconds
        self.faults = faults
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics.gauge("sim.executor.workers").set(self.jobs)
        if cache is not None:
            self.cache = cache
        else:
            self.cache = (
                SimResultCache(cache_dir, faults=faults, metrics=self.metrics)
                if cache_dir is not None
                else None
            )
        self.telemetry = SimTelemetry(self.metrics)
        #: Guardrail state: plan, recorded events, watchdog, telemetry.
        self.guard = GuardRail(guard, self.metrics, self.tracer)
        #: Terminal failures from the most recent ``run_many`` batch.
        self.last_failures: list[SimJobFailure] = []
        self._next_ordinal = 0

    # ------------------------------------------------------------------ public
    def run(self, trace: SyntheticTrace, machine: MachineConfig) -> SimResult:
        """Simulate one (trace, machine) job through the cache layers.

        Raises:
            SimJobError: If the job fails permanently (retry budget spent).
        """
        return self.run_many([(trace, machine)])[0]

    def run_many(
        self, pairs: Sequence[SimJob], raise_on_error: bool = True
    ) -> list[SimResult | None]:
        """Simulate a batch of jobs; results align with the input order.

        Identical jobs are simulated once; cached jobs are never simulated;
        the rest fan out across the pool (or run serially for ``jobs=1``).
        Results are bit-identical to calling :func:`~repro.sim.cpu.simulate`
        on each pair in a loop.

        Args:
            pairs: The (trace, machine) jobs.
            raise_on_error: With the default ``True``, a permanently failed
                job raises :class:`SimJobError` (after every other job has
                completed).  With ``False``, failed slots are returned as
                ``None`` so callers can degrade gracefully; inspect
                :attr:`last_failures` for the terminal outcomes.

        Raises:
            SimJobError: A job exhausted its retries (``raise_on_error``).
        """
        pairs = list(pairs)
        telemetry = self.telemetry
        telemetry.batches += 1
        telemetry.jobs_submitted += len(pairs)
        results: list[SimResult | None] = [None] * len(pairs)
        self.last_failures: list[SimJobFailure] = []

        with self.tracer.span(
            "executor-batch", kind="executor", n_jobs=len(pairs)
        ) as batch_span:
            started = perf_counter()
            # Deduplicate in-flight jobs: slots maps each unique cache key
            # to every submitted index wanting its result.
            slots: dict[str, list[int]] = {}
            for index, (trace, machine) in enumerate(pairs):
                slots.setdefault(cache_key(trace, machine), []).append(index)
            telemetry.jobs_deduplicated += len(pairs) - len(slots)

            pending: list[tuple[str, SyntheticTrace, MachineConfig]] = []
            with self.tracer.span("cache-probe", kind="cache"):
                for key, indices in slots.items():
                    trace, machine = pairs[indices[0]]
                    cached = self.cache.get(trace, machine) if self.cache else None
                    if cached is not None:
                        telemetry.cache_hits += 1
                        for index in indices:
                            results[index] = cached
                    else:
                        pending.append((key, trace, machine))
            telemetry.probe_seconds += perf_counter() - started
            batch_span.set(
                unique_jobs=len(slots), simulated=len(pending)
            )
            logger.debug(
                "batch: %d job(s), %d unique, %d to simulate",
                len(pairs), len(slots), len(pending),
            )

            if pending:
                watchdog = self.guard.watchdog
                watchdog.batch_started()
                try:
                    computed = self._execute(pending)
                finally:
                    watchdog.batch_finished()
                started = perf_counter()
                with self.tracer.span("reap", kind="executor"):
                    for (key, _, _), outcome in zip(pending, computed):
                        if isinstance(outcome, SimJobFailure):
                            self.last_failures.append(outcome)
                            continue
                        for index in slots[key]:
                            results[index] = outcome
                telemetry.reap_seconds += perf_counter() - started
                if self.last_failures:
                    batch_span.set(failed=len(self.last_failures))
                    logger.warning(
                        "batch finished with %d permanently failed job(s)",
                        len(self.last_failures),
                    )
                    if raise_on_error:
                        raise SimJobError(self.last_failures[0])
        return results

    # --------------------------------------------------------------- internals
    def _execute(
        self, pending: list[tuple[str, SyntheticTrace, MachineConfig]]
    ) -> list[SimResult | SimJobFailure]:
        self.telemetry.jobs_run += len(pending)
        ordinals = list(range(self._next_ordinal, self._next_ordinal + len(pending)))
        self._next_ordinal += len(pending)
        if self.jobs <= 1 or len(pending) <= 1:
            return self._execute_serial(pending, ordinals)

        # Poison-job circuit breaker: a job whose kill count reached the
        # guard threshold never touches a pool again — it is quarantined to
        # the parent's serial lane (bit-identical, just slower) while its
        # clean siblings keep their workers.  The kill counts are recorded
        # synchronously in this thread, so the decision is deterministic.
        watchdog = self.guard.watchdog
        poisoned = [
            i for i, (key, _, _) in enumerate(pending) if watchdog.is_poisoned(key)
        ]
        if not poisoned:
            return self._execute_pool(pending, ordinals)
        for i in poisoned:
            key, trace, machine = pending[i]
            watchdog.circuit_break(trace.name, machine.name, key)
        clean = [i for i in range(len(pending)) if not watchdog.is_poisoned(pending[i][0])]
        outcomes: list[SimResult | SimJobFailure | None] = [None] * len(pending)
        if clean:
            pooled = (
                self._execute_pool if len(clean) > 1 else self._execute_serial
            )([pending[i] for i in clean], [ordinals[i] for i in clean])
            for i, outcome in zip(clean, pooled):
                outcomes[i] = outcome
        quarantined = self._execute_serial(
            [pending[i] for i in poisoned], [ordinals[i] for i in poisoned]
        )
        for i, outcome in zip(poisoned, quarantined):
            outcomes[i] = outcome
        return outcomes  # type: ignore[return-value]  # every slot is filled

    def _execute_pool(
        self,
        pending: list[tuple[str, SyntheticTrace, MachineConfig]],
        ordinals: list[int],
    ) -> list[SimResult | SimJobFailure]:
        telemetry = self.telemetry
        # A degraded cache cannot absorb worker writes; ship results in-band.
        spec = (
            cache_spec(self.cache)
            if self.cache is not None and not self.cache.degraded
            else None
        )
        try:
            pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(pending)))
        except Exception:
            # Pickling-hostile environment: the jobs are pure, so running
            # serially gives the identical results.
            telemetry.serial_fallbacks += 1
            self.tracer.event("serial-fallback", reason="pool-construction")
            return self._execute_serial(pending, ordinals)

        want_spans = self.tracer.enabled
        pool_span = self.tracer.span(
            "simulate-pool",
            kind="executor",
            n_jobs=len(pending),
            workers=min(self.jobs, len(pending)),
        )
        pool_span.__enter__()
        started = perf_counter()
        watchdog = self.guard.watchdog
        in_band: dict[int, object] = {}
        worker_spans: dict[int, list] = {}
        guard_payloads: dict[int, tuple] = {}
        failed_kind: dict[int, str] = {}
        failed_error: dict[int, str] = {}
        pool_broken = False
        try:
            try:
                futures = {}
                for i, ((_, trace, machine), ordinal) in enumerate(
                    zip(pending, ordinals)
                ):
                    futures[i] = pool.submit(
                        _run_job,
                        (trace, machine, spec, self.faults, ordinal, 1,
                         want_spans, self.engine, self.guard.plan),
                    )
                    watchdog.job_started(ordinal, trace.name, machine.name)
            except Exception:
                telemetry.serial_fallbacks += 1
                telemetry.simulate_seconds += perf_counter() - started
                pool_span.__exit__(None, None, None)
                self.tracer.event("serial-fallback", reason="submit-failure")
                return self._execute_serial(pending, ordinals)
            for i, future in futures.items():
                try:
                    in_band[i], worker_spans[i], guard_payloads[i] = (
                        future.result(timeout=self.timeout_seconds)
                    )
                except concurrent.futures.TimeoutError:
                    telemetry.job_timeouts += 1
                    future.cancel()
                    failed_kind[i] = "timeout"
                    failed_error[i] = (
                        f"no result within {self.timeout_seconds} s"
                    )
                    self.tracer.event(
                        "job-timeout",
                        workload=pending[i][1].name,
                        timeout_seconds=self.timeout_seconds,
                    )
                except BrokenProcessPool as exc:
                    if not pool_broken:
                        telemetry.worker_crashes += 1
                        pool_broken = True
                        self.tracer.event("worker-crash")
                        logger.warning(
                            "worker process died; isolating affected jobs"
                        )
                    failed_kind[i] = "crash"
                    failed_error[i] = str(exc) or "worker process died"
                except MemoryError as exc:
                    failed_kind[i] = "oom"
                    failed_error[i] = f"MemoryError: {exc}"
                    self.guard.record(
                        GuardEvent(
                            kind="worker-oom",
                            workload=pending[i][1].name,
                            machine=pending[i][2].name,
                            action="isolate",
                            detail=str(exc) or "worker memory budget breached",
                        )
                    )
                except Exception as exc:  # a poisoned job's own exception
                    failed_kind[i] = "error"
                    failed_error[i] = f"{type(exc).__name__}: {exc}"
                    self.tracer.event(
                        "job-error",
                        workload=pending[i][1].name,
                        error=type(exc).__name__,
                    )
                finally:
                    watchdog.job_finished(ordinals[i])
        finally:
            # Never block on a hung worker: abandoned processes finish (or
            # die) on their own; their cache writes are atomic and idempotent.
            pool.shutdown(wait=False, cancel_futures=True)
        # Stitch the workers' span records into the parent tree before the
        # pool span closes: each worker lane becomes a Chrome-trace tid,
        # re-based to the pool span's start (worker clocks are their own).
        if want_spans:
            workers = min(self.jobs, len(pending))
            for i in sorted(worker_spans):
                records = worker_spans[i]
                if records:
                    self.tracer.adopt(
                        records,
                        rebase_us=pool_span.start_us,
                        tid=1 + (i % workers),
                    )
        telemetry.simulate_seconds += perf_counter() - started
        pool_span.__exit__(None, None, None)
        telemetry.parallel_jobs_run += len(in_band)
        # Absorb the workers' shipped-back guard outcomes in submit order,
        # so event ordering is deterministic regardless of completion order.
        for i in sorted(guard_payloads):
            events, sentinels = guard_payloads[i]
            self.guard.absorb(events, sentinels)

        outcomes: list[SimResult | SimJobFailure | None] = [None] * len(pending)
        started = perf_counter()
        for i, result in in_band.items():
            _, trace, machine = pending[i]
            if result is None and self.cache is not None:
                # The worker wrote the cache entry; reap it from disk.  A
                # corrupt entry is quarantined by the cache and comes back
                # as None.
                result = self.cache.get(trace, machine)
            if result is None:
                # Reap failed (entry evicted or corrupted underneath us) —
                # recompute in the parent; determinism makes this safe.
                result, events, sentinels = guarded_simulate(
                    trace, machine, self.engine, self.guard.plan,
                    self.faults, ordinals[i], tracer=self.tracer,
                )
                self.guard.absorb(events, sentinels)
                if self.cache is not None:
                    self.cache.put(trace, machine, result)
            outcomes[i] = result
        telemetry.reap_seconds += perf_counter() - started

        if failed_kind:
            # Crash isolation: only the affected jobs rerun serially; every
            # finished sibling above keeps its result.
            indices = sorted(failed_kind)
            telemetry.jobs_isolated += len(indices)
            if self.retry.max_attempts <= 1:
                telemetry.jobs_failed += len(indices)
                for i in indices:
                    _, trace, machine = pending[i]
                    outcomes[i] = SimJobFailure(
                        trace_name=trace.name,
                        machine_name=machine.name,
                        attempts=1,
                        kind=failed_kind[i],
                        error=failed_error[i],
                    )
            else:
                recovered = self._execute_serial(
                    [pending[i] for i in indices],
                    [ordinals[i] for i in indices],
                    first_attempt=2,
                )
                for i, outcome in zip(indices, recovered):
                    outcomes[i] = outcome
            # Poison-job accounting: a broken-pool crash is attributed to a
            # job only when its serial rerun *also* fails — bystanders that
            # were merely in flight when another job killed the worker
            # recover serially and never accumulate kills.  Enough kills
            # (GuardPlan.poison_threshold) circuit-break the job out of
            # future pools.
            for i in indices:
                if failed_kind[i] == "crash" and isinstance(
                    outcomes[i], SimJobFailure
                ):
                    watchdog.record_worker_kill(pending[i][0])
        return outcomes  # type: ignore[return-value]  # every slot is filled

    def _execute_serial(
        self,
        pending: list[tuple[str, SyntheticTrace, MachineConfig]],
        ordinals: list[int],
        first_attempt: int = 1,
    ) -> list[SimResult | SimJobFailure]:
        started = perf_counter()
        results: list[SimResult | SimJobFailure] = []
        for (_, trace, machine), ordinal in zip(pending, ordinals):
            results.append(
                self._run_with_retry(trace, machine, ordinal, first_attempt)
            )
        self.telemetry.simulate_seconds += perf_counter() - started
        return results

    def _run_with_retry(
        self,
        trace: SyntheticTrace,
        machine: MachineConfig,
        ordinal: int,
        first_attempt: int,
    ) -> SimResult | SimJobFailure:
        """One job through the retry policy, in the parent process."""
        attempt = first_attempt
        watchdog = self.guard.watchdog
        with self.tracer.span(
            "sim-job",
            kind="job",
            workload=trace.name,
            machine=machine.name,
            ordinal=ordinal,
            in_worker=False,
        ) as job_span:
            watchdog.job_started(ordinal, trace.name, machine.name)
            try:
                return self._retry_loop(
                    trace, machine, ordinal, attempt, job_span
                )
            finally:
                watchdog.job_finished(ordinal)

    def _retry_loop(self, trace, machine, ordinal, attempt, job_span):
        """The attempt loop of :meth:`_run_with_retry` (watchdog-tracked)."""
        while True:
            try:
                if self.faults is not None:
                    self.faults.apply_job_fault(
                        ordinal, trace.name, attempt, in_worker=False
                    )
                result, guard_events, sentinels = guarded_simulate(
                    trace, machine, self.engine, self.guard.plan,
                    self.faults, ordinal, attempt, tracer=self.tracer,
                )
                self.guard.absorb(guard_events, sentinels)
            except Exception as exc:
                if attempt >= self.retry.max_attempts:
                    self.telemetry.jobs_failed += 1
                    job_span.set(
                        failed=True, attempts=attempt,
                        error=type(exc).__name__,
                    )
                    logger.warning(
                        "job %s on %s failed permanently after %d "
                        "attempt(s): %s", trace.name, machine.name,
                        attempt, exc,
                    )
                    return SimJobFailure(
                        trace_name=trace.name,
                        machine_name=machine.name,
                        attempts=attempt,
                        kind="oom" if isinstance(exc, MemoryError) else "crash",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                self.telemetry.job_retries += 1
                delay = self.retry.delay(attempt)
                job_span.event(
                    "job-retry",
                    workload=trace.name,
                    attempt=attempt,
                    delay_seconds=delay,
                    error=type(exc).__name__,
                )
                if delay > 0:
                    time.sleep(delay)
                attempt += 1
                continue
            if self.cache is not None:
                self.cache.put(trace, machine, result)
            job_span.set(attempts=attempt)
            return result


def prime_engines(
    executor: SimExecutor,
    engines: Iterable,
    profiles: Iterable,
) -> int:
    """Batch-simulate workloads for several engines in one fan-out.

    ``engines`` are simulation front ends exposing the small batching
    protocol (``has_result`` / ``trace_for`` / ``machine`` /
    ``absorb_result``) — :class:`~repro.sim.platform.HardwarePlatform` and
    :class:`~repro.sim.gem5.Gem5Simulation`.  All missing (workload ×
    machine) jobs are submitted to the executor up front, so one pool
    services the hardware and model simulations together.

    Jobs that fail permanently are simply not absorbed: the owning engine
    retries them lazily on first use, and if they fail again the failure
    surfaces there (where dataset collection can record it and degrade
    gracefully) instead of aborting the whole batch here.

    Returns:
        The number of simulations submitted (0 when everything was already
        memoised on the engines).
    """
    jobs: list[SimJob] = []
    owners: list[tuple[object, str]] = []
    for engine in engines:
        for profile in profiles:
            if engine.has_result(profile.name):
                continue
            jobs.append((engine.trace_for(profile), engine.machine))
            owners.append((engine, profile.name))
    if not jobs:
        return 0
    for (engine, name), result in zip(
        owners, executor.run_many(jobs, raise_on_error=False)
    ):
        if result is not None:
            engine.absorb_result(name, result)
    return len(jobs)
