"""The simulated ODROID-XU3 hardware platform.

This module plays the part of the physical development board in the paper's
Experiments 1, 3 and 4:

* runs workloads on the true Cortex-A7/A15 micro-architecture (through the
  shared CPU simulator) at any supported OPP;
* exposes an ARMv7 PMU with six multiplexed counters — capturing all 68
  events of Experiment 1 requires repeated runs, each with its own
  run-to-run jitter, exactly the procedure the paper describes;
* reports execution time as the median of five runs;
* measures cluster power with the board's 3.8 Hz averaged power sensors,
  repeating the workload to fill a >=30 s measurement window;
* models die temperature (ambient + thermal resistance x power) and the
  thermal throttling that makes 2 GHz unusable on the A15 (Section III).

All nondeterminism is seeded from (workload, core, frequency); repeated
characterisation is bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.events.armv7_pmu import events_for_core
from repro.sim.cpu import SimResult, simulate
from repro.sim.dvfs import OppTable, opp_table_for
from repro.sim.machine import MachineConfig, hardware_a7, hardware_a15
from repro.sim.power_ground_truth import PowerGroundTruth
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import SyntheticTrace, compile_trace, workload_seed

#: Simultaneously programmable PMU counters (plus the fixed cycle counter).
MAX_PMU_COUNTERS = 6

#: Power sensor sample rate of the ODROID-XU3 (INA231 averaged output).
SENSOR_HZ = 3.8

#: Minimum power-measurement window, as used in the paper.
POWER_WINDOW_SECONDS = 30.0

#: Thermal parameters: ambient and per-cluster thermal resistance (C/W).
AMBIENT_C = 28.0
THERMAL_RESISTANCE = {"A15": 10.0, "A7": 14.0}

#: A15 junction temperature that trips the thermal governor.
THROTTLE_TEMP_C = 82.0


@dataclass
class HwMeasurement:
    """One characterised (workload, frequency) point on the hardware.

    Attributes:
        workload: Workload name.
        core: ``"A7"`` or ``"A15"``.
        freq_hz: Requested core frequency.
        effective_freq_hz: Frequency actually sustained (lower if throttled).
        time_seconds: Median-of-five execution time of a single run.
        pmc: Event totals for one run, keyed by PMU event number.  Captured
            through counter multiplexing, so different events carry
            (deterministic) different run jitter.
        power_w: Mean cluster power over the sensor window (mean of the
            finite samples; NaN when every sample was lost).
        power_samples: The individual 3.8 Hz sensor readings, including any
            NaN readings a faulty sensor produced.
        temperature_c: Settled die temperature during the power run.
        throttled: True when the thermal governor reduced the frequency.
        threads: Active cores during the run.
        power_samples_lost: Sensor readings dropped or NaN during the
            window (0 on a healthy sensor).
    """

    workload: str
    core: str
    freq_hz: float
    effective_freq_hz: float
    time_seconds: float
    pmc: dict[int, float]
    power_w: float
    power_samples: np.ndarray
    temperature_c: float
    throttled: bool
    threads: int
    power_samples_lost: int = 0

    def rate(self, event: int) -> float:
        """Event rate in events/second over the run."""
        return self.pmc[event] / self.time_seconds

    def energy_j(self) -> float:
        """Energy of a single workload run at the measured mean power."""
        return self.power_w * self.time_seconds


class HardwarePlatform:
    """The reference board: true micro-architecture plus measurement warts."""

    def __init__(
        self,
        core: str = "A15",
        trace_instructions: int = 60_000,
        machine: MachineConfig | None = None,
        cache_dir: str | None = None,
        executor=None,
        jobs: int | None = None,
        faults=None,
        engine: str = "auto",
    ):
        if machine is None:
            machine = hardware_a15() if core == "A15" else hardware_a7()
        if machine.core != core:
            raise ValueError(f"machine {machine.name} is not a {core} config")
        self.core = core
        self.machine = machine
        self.engine = engine
        self.trace_instructions = trace_instructions
        self.opps: OppTable = opp_table_for(core)
        self.power_process = PowerGroundTruth(core)
        self.faults = faults
        self._trace_cache: dict[str, SyntheticTrace] = {}
        self._sim_cache: dict[str, SimResult] = {}
        if executor is None and jobs is not None and jobs != 1:
            from repro.sim.executor import SimExecutor

            executor = SimExecutor(
                jobs=jobs, cache_dir=cache_dir, faults=faults, engine=engine
            )
        self.executor = executor
        self._disk_cache = None
        if cache_dir is not None and executor is None:
            from repro.sim.result_cache import SimResultCache

            self._disk_cache = SimResultCache(cache_dir)

    # ------------------------------------------------------------- simulation
    def _trace(self, profile: WorkloadProfile) -> SyntheticTrace:
        trace = self._trace_cache.get(profile.name)
        if trace is None:
            trace = compile_trace(profile, self.trace_instructions)
            self._trace_cache[profile.name] = trace
        return trace

    def _sim(self, profile: WorkloadProfile) -> SimResult:
        result = self._sim_cache.get(profile.name)
        if result is None:
            trace = self._trace(profile)
            if self.executor is not None:
                # The executor owns deduplication and the disk cache.
                result = self.executor.run(trace, self.machine)
            else:
                if self._disk_cache is not None:
                    result = self._disk_cache.get(trace, self.machine)
                if result is None:
                    result = simulate(trace, self.machine, self.engine)
                    if self._disk_cache is not None:
                        self._disk_cache.put(trace, self.machine, result)
            self._sim_cache[profile.name] = result
        return result

    # Batching protocol used by repro.sim.executor.prime_engines: datasets
    # collect every missing (workload x machine) job up front and fan them
    # out through one executor instead of simulating lazily one by one.
    def has_result(self, name: str) -> bool:
        """True when this workload's simulation is already memoised."""
        return name in self._sim_cache

    def trace_for(self, profile: WorkloadProfile) -> SyntheticTrace:
        """Compiled (and memoised) trace for one workload profile."""
        return self._trace(profile)

    def absorb_result(self, name: str, result: SimResult) -> None:
        """Install an externally computed simulation result."""
        self._sim_cache[name] = result

    @staticmethod
    def repeat_count(profile: WorkloadProfile, trace_instructions: int) -> int:
        """How many trace passes one workload *run* represents.

        Derived purely from the workload definition (its nominal duration at
        1 GHz assuming CPI 1), never from measured behaviour, so the hardware
        run and the gem5 simulation represent the identical amount of work.
        """
        nominal = profile.natural_seconds * 1e9
        return max(1, round(nominal / trace_instructions))

    # ----------------------------------------------------------------- public
    def characterize(
        self, profile: WorkloadProfile, freq_hz: float, with_power: bool = True
    ) -> HwMeasurement:
        """Run Experiment-1-style characterisation of one workload.

        Execution time is the median of five jittered runs; PMCs are captured
        in multiplexed groups of six; power (optional) is measured over a
        >=30 s repeated-execution window at the settled die temperature.
        """
        voltage = self.opps.voltage(freq_hz)
        sim = self._sim(profile)
        repeat = self.repeat_count(profile, self.trace_instructions)

        effective_freq, throttled = self._thermal_frequency(profile, freq_hz, voltage)
        single_time = sim.time_seconds(effective_freq) * repeat

        rng = np.random.default_rng(
            workload_seed(profile.name, f"hw-{self.core}-{freq_hz:.0f}")
        )
        run_times = single_time * (1.0 + rng.normal(0.0, 0.004, size=5))
        time_seconds = float(np.median(run_times))

        # The PMU is read system-wide: counts aggregate over all active
        # cores (threads are homogeneous), like perf's per-cluster counting
        # on the real board.
        pmc = self._multiplexed_pmc(
            sim, effective_freq, time_seconds, repeat * profile.threads, rng
        )

        if with_power:
            power_w, samples, temperature, samples_lost = self._measure_power(
                sim, profile, effective_freq, voltage, time_seconds, rng
            )
        else:
            power_w, samples, temperature, samples_lost = (
                float("nan"), np.empty(0), AMBIENT_C, 0
            )

        return HwMeasurement(
            workload=profile.name,
            core=self.core,
            freq_hz=freq_hz,
            effective_freq_hz=effective_freq,
            time_seconds=time_seconds,
            pmc=pmc,
            power_w=power_w,
            power_samples=samples,
            temperature_c=temperature,
            throttled=throttled,
            threads=profile.threads,
            power_samples_lost=samples_lost,
        )

    def measure_events(
        self, profile: WorkloadProfile, freq_hz: float, events: list[int]
    ) -> dict[int, float]:
        """Programme specific PMU counters (at most six) for one run."""
        if len(events) > MAX_PMU_COUNTERS:
            raise ValueError(
                f"the PMU has {MAX_PMU_COUNTERS} programmable counters; "
                f"{len(events)} requested — multiplex across runs instead"
            )
        measurement = self.characterize(profile, freq_hz, with_power=False)
        unknown = [e for e in events if e not in measurement.pmc]
        if unknown:
            raise KeyError(f"events not implemented by the {self.core} PMU: {unknown}")
        return {e: measurement.pmc[e] for e in events}

    # --------------------------------------------------------------- internals
    def _thermal_frequency(
        self, profile: WorkloadProfile, freq_hz: float, voltage: float
    ) -> tuple[float, bool]:
        """Thermal governor: the A15 cannot sustain 2 GHz (Section III)."""
        if self.core != "A15" or freq_hz < 1.9e9:
            return freq_hz, False
        # Estimate settled temperature at the requested OPP; throttle to the
        # next OPP down when it exceeds the trip point.
        sim = self._sim(profile)
        time_s = sim.time_seconds(freq_hz)
        counts = self._scaled_counts(sim, 1)
        counts["cycles"] = sim.cycles(freq_hz)
        power = self.power_process.cluster_power(
            counts, time_s, voltage, freq_hz, profile.threads, temperature_c=80.0
        )
        temperature = AMBIENT_C + THERMAL_RESISTANCE[self.core] * power
        if temperature > THROTTLE_TEMP_C:
            return 1.8e9, True
        return freq_hz, False

    @staticmethod
    def _scaled_counts(sim: SimResult, repeat: int) -> dict[str, float]:
        return {key: value * repeat for key, value in sim.counts.items()}

    def _multiplexed_pmc(
        self,
        sim: SimResult,
        freq_hz: float,
        time_seconds: float,
        repeat: int,
        rng: np.random.Generator,
    ) -> dict[int, float]:
        """Capture the full event set through groups of six counters.

        Each group of events comes from a separate (jittered) run, exactly
        like the paper's repeated Experiment-1 sweeps over 68 events.
        """
        ideal = self._ideal_pmc(sim, freq_hz, time_seconds, repeat)
        numbers = sorted(ideal)
        pmc: dict[int, float] = {}
        for group_start in range(0, len(numbers), MAX_PMU_COUNTERS):
            group = numbers[group_start:group_start + MAX_PMU_COUNTERS]
            group_jitter = 1.0 + rng.normal(0.0, 0.004)
            for event in group:
                event_noise = 1.0 + rng.normal(0.0, 0.002)
                pmc[event] = ideal[event] * group_jitter * event_noise
        pmc[0x11] = ideal[0x11] * (1.0 + rng.normal(0.0, 0.001))  # cycle counter
        return pmc

    def _ideal_pmc(
        self, sim: SimResult, freq_hz: float, time_seconds: float, repeat: int
    ) -> dict[int, float]:
        """Map neutral simulator counts onto the ARMv7 PMU event space."""
        counts = self._scaled_counts(sim, repeat)
        get = counts.get
        loads = get("inst_load", 0.0) + get("inst_ldrex", 0.0)
        stores = get("inst_store", 0.0) + get("inst_strex", 0.0)
        mem_accesses = get("l1d_rd_accesses", 0.0) + get("l1d_wr_accesses", 0.0)
        load_share = loads / max(loads + stores, 1.0)
        spec = get("spec_instructions", 0.0) / max(get("instructions", 1.0), 1.0)
        cycles = sim.cycles(freq_hz) * repeat
        barriers = get("inst_barrier", 0.0)
        unaligned = get("unaligned_accesses", 0.0)

        pmc = {
            0x00: 0.0,  # SW_INCR: no software increments in these workloads
            0x01: get("l1i_misses", 0.0),
            0x02: get("itlb_misses", 0.0),
            # Refill events count allocations; streaming stores bypass the
            # cache entirely and therefore do not refill.
            0x03: get("l1d_rd_misses", 0.0) + get("l1d_wr_refills", 0.0),
            0x04: mem_accesses,
            0x05: get("dtlb_misses", 0.0),
            0x06: loads,
            0x07: stores,
            0x08: get("instructions", 0.0),
            0x09: get("itlb_walks", 0.0) * 0.01,
            0x0A: get("itlb_walks", 0.0) * 0.01,
            0x0B: 0.0,
            0x0C: get("branches", 0.0),
            0x0D: get("cond_branches", 0.0) + get("calls", 0.0),
            0x0E: get("returns", 0.0),
            0x0F: unaligned,
            0x10: get("branch_mispredicts", 0.0),
            0x11: cycles,
            0x12: get("cond_branches", 0.0) * spec,
            0x13: mem_accesses,
            # The A15 PMU counts one L1I access per fetch window (up to four
            # instructions; taken branches cut windows short), not one per
            # instruction the way gem5 does — the paper's ~2x divergence.
            0x14: get("instructions", 0.0) * 0.52,
            0x15: get("l1d_writebacks", 0.0),
            0x16: get("l2_rd_accesses", 0.0) + get("l2_wr_accesses", 0.0),
            0x17: get("l2_rd_misses", 0.0) + get("l2_wr_misses", 0.0),
            0x18: get("l2_writebacks", 0.0),
            0x19: get("dram_reads", 0.0) + get("dram_writes", 0.0),
            0x1B: get("spec_instructions", 0.0),
            0x1C: 0.0,
            0x1D: time_seconds * 400e6,  # 400 MHz memory bus
        }
        if self.core == "A15":
            strex = get("inst_strex", 0.0)
            pmc.update(
                {
                    0x40: get("l1d_rd_accesses", 0.0),
                    0x41: get("l1d_wr_accesses", 0.0),
                    0x42: get("l1d_rd_misses", 0.0),
                    0x43: get("l1d_wr_refills", 0.0),
                    0x4C: get("dtlb_misses", 0.0) * load_share,
                    0x4D: get("dtlb_misses", 0.0) * (1.0 - load_share),
                    0x50: get("l2_rd_accesses", 0.0),
                    0x51: get("l2_wr_accesses", 0.0),
                    0x52: get("l2_rd_misses", 0.0),
                    0x53: get("l2_wr_misses", 0.0),
                    0x60: get("dram_reads", 0.0),
                    0x61: get("dram_writes", 0.0),
                    0x62: (get("dram_reads", 0.0) + get("dram_writes", 0.0)) * 0.9,
                    0x63: (get("dram_reads", 0.0) + get("dram_writes", 0.0)) * 0.1,
                    0x64: get("dram_reads", 0.0) + get("dram_writes", 0.0),
                    0x65: 0.0,
                    0x66: get("l1d_rd_accesses", 0.0),
                    0x67: get("l1d_wr_accesses", 0.0),
                    0x68: unaligned * load_share,
                    0x69: unaligned * (1.0 - load_share),
                    0x6A: unaligned,
                    0x6C: get("inst_ldrex", 0.0) * spec,
                    0x6D: strex * 0.98,
                    0x6E: strex * 0.02,
                    0x70: loads * spec,
                    0x71: stores * spec,
                    0x72: (loads + stores) * spec,
                    0x73: (
                        get("inst_int_alu", 0.0)
                        + get("inst_mul", 0.0)
                        + get("inst_div", 0.0)
                    ) * spec,
                    0x74: get("inst_simd", 0.0) * spec,
                    0x75: get("inst_fp", 0.0) * spec,
                    0x76: get("branches", 0.0) * spec,
                    0x78: (get("cond_branches", 0.0) + get("calls", 0.0)) * spec,
                    0x79: get("returns", 0.0) * spec,
                    0x7A: get("indirect_branches", 0.0) * spec,
                    0x7C: barriers * 0.05,
                    0x7D: barriers * 0.25,
                    0x7E: barriers * 0.70,
                }
            )
        available = {event.number for event in events_for_core(self.core)}
        return {number: value for number, value in pmc.items() if number in available}

    def _measure_power(
        self,
        sim: SimResult,
        profile: WorkloadProfile,
        freq_hz: float,
        voltage: float,
        single_run_seconds: float,
        rng: np.random.Generator,
    ) -> tuple[float, np.ndarray, float, int]:
        """Sensor-sampled mean power over a >=30 s repeated-run window.

        Returns ``(mean power, samples, die temperature, samples lost)``.
        The mean is taken over the *finite* samples, so a sensor that drops
        readings or emits NaN (see :mod:`repro.sim.faults`) degrades the
        measurement instead of poisoning it; with no faults installed the
        value is bit-identical to the plain mean.
        """
        counts = self._scaled_counts(sim, 1)
        counts["cycles"] = sim.cycles(freq_hz)
        trace_time = sim.time_seconds(freq_hz)

        # Settle the die temperature: power depends on leakage depends on
        # temperature; a few fixed-point iterations converge.
        temperature = AMBIENT_C + 20.0
        power = 0.0
        for _ in range(4):
            power = self.power_process.cluster_power(
                counts, trace_time, voltage, freq_hz, profile.threads, temperature
            )
            temperature = AMBIENT_C + THERMAL_RESISTANCE[self.core] * power

        # Run-to-run measurement conditions: ambient temperature, regulator
        # tolerance and storage-media timing shift the whole run's power by
        # a few percent (the effects the paper lists when its re-validation
        # of the published Powmon coefficients lands at 5.6 % instead of
        # 2.8 %).  Systematic per-(workload, OPP), not per-sample.
        conditions = 1.0 + rng.normal(0.0, 0.028)
        power *= conditions

        window = max(POWER_WINDOW_SECONDS, single_run_seconds)
        n_samples = max(8, int(window * SENSOR_HZ))
        drift = 1.0 + 0.01 * np.sin(np.linspace(0.0, 2.2 * math.pi, n_samples))
        noise = rng.normal(0.0, 0.008, size=n_samples)
        samples = power * drift * (1.0 + noise) + rng.normal(0.0, 0.002, n_samples)
        samples = np.round(np.clip(samples, 0.0, None), 3)  # mW quantisation

        samples_lost = 0
        if self.faults is not None:
            samples, samples_lost = self.faults.apply_power_faults(
                profile.name, f"{self.core}-{freq_hz:.0f}", samples
            )
        valid = samples[np.isfinite(samples)]
        mean_power = float(valid.mean()) if valid.size else float("nan")
        return mean_power, samples, temperature, samples_lost
