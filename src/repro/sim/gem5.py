"""The gem5-style simulation: model configs in, gem5-namespace stats out.

:class:`Gem5Simulation` runs the identical workload traces as the hardware
platform, but on a *model* machine configuration (``gem5_ex5_big`` /
``gem5_ex5_little`` / the fixed-BP variant) and emits its results the way
gem5 does — as a flat dictionary of named statistics
(``system.cpu.branchPred.condIncorrect``, ``system.cpu.itb_walker_cache.
ReadReq_accesses``, ``sim_seconds``, ...).

The emission layer also reproduces gem5's *accounting* quirks documented in
the paper, independent of any timing behaviour:

* the L1I is accessed once per instruction rather than once per fetched
  line (the ~2x L1I access divergence of Fig. 6);
* VFP floating-point operations are classified as SIMD
  (``commit.fp_insts`` vs ``commit.vec_insts``, Section V);
* ``itb.misses`` counts only committed-path refills, while the walker
  cache sees all speculative traffic (the Cluster A signature).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.gem5_stats import GEM5_STAT_GROUPS, GLOBAL_STATS, Gem5StatCatalog
from repro.sim.cpu import SimResult, simulate
from repro.sim.machine import MachineConfig, gem5_ex5_big
from repro.sim.platform import HardwarePlatform
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import SyntheticTrace, compile_trace


@dataclass
class Gem5Stats:
    """One gem5 simulation output (the parsed ``stats.txt`` equivalent).

    Attributes:
        workload: Workload name.
        machine_name: The model configuration that produced the stats.
        freq_hz: Simulated core frequency.
        stats: Statistic values keyed by *short* name (``"commit.
            committedInsts"``); use :meth:`full` for fully-qualified names.
    """

    workload: str
    machine_name: str
    freq_hz: float
    stats: dict[str, float]
    catalog: Gem5StatCatalog

    @property
    def sim_seconds(self) -> float:
        return self.stats["sim_seconds"]

    def value(self, short_name: str) -> float:
        """Value of one stat by short name.

        Raises:
            KeyError: For names outside the emitted catalog.
        """
        return self.stats[short_name]

    def rate(self, short_name: str) -> float:
        """Stat per simulated second (rate-like stats returned unchanged)."""
        if self.catalog.is_rate_like(short_name):
            return self.stats[short_name]
        return self.stats[short_name] / self.sim_seconds

    def full(self) -> dict[str, float]:
        """Stats keyed by fully-qualified gem5 names."""
        return {self.catalog.qualify(name): value for name, value in self.stats.items()}


class Gem5Simulation:
    """Runs workloads on a gem5 model configuration."""

    def __init__(
        self,
        machine: MachineConfig | None = None,
        trace_instructions: int = 60_000,
        cache_dir: str | None = None,
        executor=None,
        jobs: int | None = None,
        engine: str = "auto",
    ):
        self.machine = machine if machine is not None else gem5_ex5_big()
        self.engine = engine
        if self.machine.flavour != "gem5":
            raise ValueError(
                f"{self.machine.name} is a {self.machine.flavour} config; "
                "Gem5Simulation needs a gem5 model config"
            )
        self.trace_instructions = trace_instructions
        self.catalog = Gem5StatCatalog()
        self._trace_cache: dict[str, SyntheticTrace] = {}
        self._sim_cache: dict[str, SimResult] = {}
        if executor is None and jobs is not None and jobs != 1:
            from repro.sim.executor import SimExecutor

            executor = SimExecutor(jobs=jobs, cache_dir=cache_dir, engine=engine)
        self.executor = executor
        self._disk_cache = None
        if cache_dir is not None and executor is None:
            from repro.sim.result_cache import SimResultCache

            self._disk_cache = SimResultCache(cache_dir)

    def _trace(self, profile: WorkloadProfile) -> SyntheticTrace:
        trace = self._trace_cache.get(profile.name)
        if trace is None:
            trace = compile_trace(profile, self.trace_instructions)
            self._trace_cache[profile.name] = trace
        return trace

    def _sim(self, profile: WorkloadProfile) -> SimResult:
        result = self._sim_cache.get(profile.name)
        if result is None:
            trace = self._trace(profile)
            if self.executor is not None:
                # The executor owns deduplication and the disk cache.
                result = self.executor.run(trace, self.machine)
            else:
                if self._disk_cache is not None:
                    result = self._disk_cache.get(trace, self.machine)
                if result is None:
                    result = simulate(trace, self.machine, self.engine)
                    if self._disk_cache is not None:
                        self._disk_cache.put(trace, self.machine, result)
            self._sim_cache[profile.name] = result
        return result

    # Batching protocol used by repro.sim.executor.prime_engines: datasets
    # collect every missing (workload x machine) job up front and fan them
    # out through one executor instead of simulating lazily one by one.
    def has_result(self, name: str) -> bool:
        """True when this workload's simulation is already memoised."""
        return name in self._sim_cache

    def trace_for(self, profile: WorkloadProfile) -> SyntheticTrace:
        """Compiled (and memoised) trace for one workload profile."""
        return self._trace(profile)

    def absorb_result(self, name: str, result: SimResult) -> None:
        """Install an externally computed simulation result."""
        self._sim_cache[name] = result

    def run(self, profile: WorkloadProfile, freq_hz: float) -> Gem5Stats:
        """Simulate one workload at one frequency; returns the stats dump."""
        if freq_hz <= 0:
            raise ValueError("frequency must be positive")
        sim = self._sim(profile)
        repeat = HardwarePlatform.repeat_count(profile, self.trace_instructions)
        # Stats aggregate over all simulated CPUs, the way gem5 sums its
        # per-cpu statistics for an N-core system of homogeneous threads.
        scale = repeat * profile.threads
        counts = {key: value * scale for key, value in sim.counts.items()}
        sim_seconds = sim.time_seconds(freq_hz) * repeat
        stats = self._emit(sim, counts, freq_hz, sim_seconds, scale)
        return Gem5Stats(
            workload=profile.name,
            machine_name=self.machine.name,
            freq_hz=freq_hz,
            stats=stats,
            catalog=self.catalog,
        )

    # -------------------------------------------------------------- emission
    def _emit(
        self,
        sim: SimResult,
        c: dict[str, float],
        freq_hz: float,
        sim_seconds: float,
        scale: float,
    ) -> dict[str, float]:
        machine = self.machine
        get = c.get
        stats: dict[str, float] = {
            f"{group}.{stat}": 0.0
            for group, group_stats in GEM5_STAT_GROUPS.items()
            for stat in group_stats
        }
        for name in GLOBAL_STATS:
            stats[name] = 0.0

        instructions = get("instructions", 0.0)
        spec_insts = get("spec_instructions", 0.0)
        wrongpath = get("wrongpath_instructions", 0.0)
        branches = get("branches", 0.0)
        mispredicts = get("branch_mispredicts", 0.0)
        cycles = sim.cycles(freq_hz) * scale
        loads = get("inst_load", 0.0) + get("inst_ldrex", 0.0)
        stores = get("inst_store", 0.0) + get("inst_strex", 0.0)
        spec = spec_insts / max(instructions, 1.0)

        stats["sim_seconds"] = sim_seconds
        stats["sim_ticks"] = sim_seconds * 1e12  # gem5 picosecond ticks
        stats["sim_insts"] = instructions
        stats["sim_ops"] = spec_insts
        stats["host_seconds"] = 0.0

        # --- CPU-level.
        stats["cpu.numCycles"] = cycles
        stats["cpu.idleCycles"] = max(cycles - instructions, 0.0) * 0.25
        stats["cpu.committedInsts"] = instructions
        stats["cpu.committedOps"] = instructions * 1.12  # micro-op expansion
        stats["cpu.cpi"] = cycles / max(instructions, 1.0)
        stats["cpu.ipc"] = instructions / max(cycles, 1.0)
        stats["cpu.int_alu_accesses"] = (
            get("inst_int_alu", 0.0) + get("inst_mul", 0.0) + get("inst_div", 0.0)
        ) * spec
        stats["cpu.fp_alu_accesses"] = (
            get("inst_fp", 0.0) + get("inst_simd", 0.0)
        ) * spec
        stats["cpu.num_mem_refs"] = loads + stores
        stats["cpu.num_load_insts"] = loads
        stats["cpu.num_store_insts"] = stores
        stats["cpu.num_branches_committed"] = branches
        stats["cpu.quiesceCycles"] = 0.0

        # --- commit.
        stats["commit.committedInsts"] = instructions
        stats["commit.committedOps"] = instructions * 1.12
        stats["commit.branchMispredicts"] = mispredicts
        stats["commit.branches"] = branches
        stats["commit.loads"] = loads
        stats["commit.membars"] = get("inst_barrier", 0.0)
        stats["commit.amos"] = get("inst_ldrex", 0.0) + get("inst_strex", 0.0)
        stats["commit.refs"] = loads + stores
        stats["commit.swp_count"] = 0.0
        stats["commit.commitNonSpecStalls"] = (
            get("inst_barrier", 0.0) + get("inst_strex", 0.0)
        )
        stats["commit.commitSquashedInsts"] = wrongpath * 0.8
        stats["commit.int_insts"] = (
            get("inst_int_alu", 0.0) + get("inst_mul", 0.0) + get("inst_div", 0.0)
        )
        if machine.vfp_counted_as_simd:
            # The misclassification of Section V: VFP lands in the SIMD bin.
            stats["commit.fp_insts"] = get("inst_fp", 0.0) * 0.04
            stats["commit.vec_insts"] = get("inst_simd", 0.0) + get("inst_fp", 0.0) * 0.96
        else:
            stats["commit.fp_insts"] = get("inst_fp", 0.0)
            stats["commit.vec_insts"] = get("inst_simd", 0.0)
        stats["commit.function_calls"] = get("calls", 0.0)
        stats["commit.cyclesWithCommittedInsts"] = min(instructions, cycles)
        stats["commit.cyclesWithNoCommittedInsts"] = max(cycles - instructions, 0.0)

        # --- branch prediction.
        cond = get("cond_branches", 0.0)
        stats["branchPred.lookups"] = branches * spec
        stats["branchPred.condPredicted"] = cond
        stats["branchPred.condIncorrect"] = get("cond_mispredicts", 0.0)
        stats["branchPred.BTBLookups"] = branches * spec
        stats["branchPred.BTBHits"] = branches * spec * 0.92
        stats["branchPred.RASUsed"] = get("returns", 0.0)
        stats["branchPred.usedRAS"] = get("returns", 0.0)
        stats["branchPred.RASInCorrect"] = get("ras_incorrect", 0.0)
        stats["branchPred.indirectLookups"] = get("indirect_branches", 0.0)
        stats["branchPred.indirectHits"] = (
            get("indirect_branches", 0.0) - get("indirect_mispredicts", 0.0)
        )
        stats["branchPred.indirectMisses"] = get("indirect_mispredicts", 0.0)
        stats["branchPred.indirectMispredicted"] = get("indirect_mispredicts", 0.0)

        # --- fetch.
        components = {k: v * scale for k, v in sim.components.items()}
        stats["fetch.Insts"] = instructions + wrongpath
        stats["fetch.Branches"] = branches * spec
        stats["fetch.predictedBranches"] = cond * spec
        stats["fetch.Cycles"] = cycles * 0.9
        stats["fetch.SquashCycles"] = components.get("branch", 0.0)
        stats["fetch.TlbCycles"] = components.get("itlb", 0.0)
        stats["fetch.TlbSquashes"] = get("itlb_wrongpath_misses", 0.0)
        stats["fetch.BlockedCycles"] = components.get("dcache", 0.0) * 0.3
        stats["fetch.MiscStallCycles"] = components.get("misc", 0.0)
        stats["fetch.PendingTrapStallCycles"] = get("itlb_wrongpath_misses", 0.0) * 2.0
        stats["fetch.IcacheStallCycles"] = components.get("icache", 0.0)
        stats["fetch.IcacheWaitRetryStallCycles"] = components.get("icache", 0.0) * 0.05
        stats["fetch.CacheLines"] = get("l1i_fetch_accesses", 0.0)
        stats["fetch.rate"] = (instructions + wrongpath) / max(cycles, 1.0)

        # --- decode / rename (coarse but plausible pipeline stats).
        stats["decode.RunCycles"] = cycles * 0.7
        stats["decode.IdleCycles"] = cycles * 0.2
        stats["decode.BlockedCycles"] = cycles * 0.1
        stats["decode.SquashCycles"] = components.get("branch", 0.0) * 0.5
        stats["decode.DecodedInsts"] = instructions + wrongpath
        stats["decode.SquashedInsts"] = wrongpath
        stats["rename.SquashCycles"] = components.get("branch", 0.0) * 0.5
        stats["rename.IdleCycles"] = cycles * 0.2
        stats["rename.BlockCycles"] = cycles * 0.05
        stats["rename.RenamedInsts"] = instructions + wrongpath
        stats["rename.ROBFullEvents"] = components.get("dcache", 0.0) * 0.01
        stats["rename.IQFullEvents"] = components.get("ops", 0.0) * 0.01
        stats["rename.LQFullEvents"] = get("l1d_rd_misses", 0.0) * 0.02
        stats["rename.SQFullEvents"] = get("l1d_wr_misses", 0.0) * 0.02

        # --- IEW (issue/execute/writeback).
        stats["iew.iewExecutedInsts"] = spec_insts
        stats["iew.iewExecLoadInsts"] = loads * spec
        stats["iew.iewExecSquashedInsts"] = wrongpath * 0.6
        stats["iew.exec_branches"] = branches * spec
        stats["iew.exec_stores"] = stores * spec
        stats["iew.exec_nop"] = instructions * 0.01
        stats["iew.exec_rate"] = spec_insts / max(cycles, 1.0)
        stats["iew.iewIQFullEvents"] = stats["rename.IQFullEvents"]
        stats["iew.iewLSQFullEvents"] = stats["rename.LQFullEvents"]
        stats["iew.predictedTakenIncorrect"] = mispredicts * 0.62
        stats["iew.predictedNotTakenIncorrect"] = mispredicts * 0.38
        stats["iew.branchMispredicts"] = mispredicts
        stats["iew.memOrderViolationEvents"] = get("inst_strex", 0.0) * 0.05
        stats["iew.lsqForwLoads"] = loads * 0.04
        stats["iew.blockCycles"] = components.get("dcache", 0.0) * 0.2
        stats["iew.squashCycles"] = components.get("branch", 0.0) * 0.4
        stats["iew.unblockCycles"] = components.get("dcache", 0.0) * 0.02

        # --- instruction TLB: committed-path misses only in itb.misses; the
        # walker cache sees all speculative traffic.
        itlb_lookups = get("itlb_lookups", 0.0)
        itlb_misses = get("itlb_misses", 0.0)
        wp_misses = get("itlb_wrongpath_misses", 0.0)
        stats["itb.accesses"] = itlb_lookups
        stats["itb.hits"] = itlb_lookups - itlb_misses
        stats["itb.misses"] = itlb_misses
        stats["itb.flush_entries"] = 0.0
        stats["itb.inst_accesses"] = itlb_lookups + wp_misses
        stats["itb.inst_hits"] = itlb_lookups - itlb_misses
        stats["itb.inst_misses"] = itlb_misses + wp_misses

        walker_accesses = get("l2tlb_i_accesses", 0.0)
        walker_misses = get("l2tlb_i_misses", 0.0)
        stats["itb_walker_cache.ReadReq_accesses"] = walker_accesses
        stats["itb_walker_cache.ReadReq_hits"] = walker_accesses - walker_misses
        stats["itb_walker_cache.ReadReq_misses"] = walker_misses
        stats["itb_walker_cache.ReadReq_miss_latency"] = (
            walker_misses * machine.tlb.walk_cycles
        )
        stats["itb_walker_cache.overall_accesses"] = walker_accesses
        stats["itb_walker_cache.overall_hits"] = walker_accesses - walker_misses
        stats["itb_walker_cache.overall_misses"] = walker_misses
        stats["itb_walker_cache.overall_miss_rate"] = walker_misses / max(
            walker_accesses, 1.0
        )
        stats["itb_walker_cache.tags.data_accesses"] = walker_accesses * 8.0

        # --- data TLB.
        dtlb_lookups = get("dtlb_lookups", 0.0)
        dtlb_misses = get("dtlb_misses", 0.0)
        load_share = loads / max(loads + stores, 1.0)
        stats["dtb.accesses"] = dtlb_lookups
        stats["dtb.hits"] = dtlb_lookups - dtlb_misses
        stats["dtb.misses"] = dtlb_misses
        stats["dtb.read_accesses"] = dtlb_lookups * load_share
        stats["dtb.read_hits"] = (dtlb_lookups - dtlb_misses) * load_share
        stats["dtb.read_misses"] = dtlb_misses * load_share
        stats["dtb.write_accesses"] = dtlb_lookups * (1.0 - load_share)
        stats["dtb.write_hits"] = (dtlb_lookups - dtlb_misses) * (1.0 - load_share)
        stats["dtb.write_misses"] = dtlb_misses * (1.0 - load_share)
        stats["dtb.prefetch_faults"] = get("dtlb_walks", 0.0) * 0.2
        dwalker = get("l2tlb_d_accesses", 0.0)
        dwalker_misses = get("l2tlb_d_misses", 0.0)
        stats["dtb_walker_cache.ReadReq_accesses"] = dwalker
        stats["dtb_walker_cache.ReadReq_hits"] = dwalker - dwalker_misses
        stats["dtb_walker_cache.ReadReq_misses"] = dwalker_misses
        stats["dtb_walker_cache.overall_accesses"] = dwalker
        stats["dtb_walker_cache.overall_misses"] = dwalker_misses

        # --- caches.  gem5 counts one L1I access per instruction.
        if machine.l1i_access_per_instruction:
            icache_accesses = get("l1i_instr_accesses", 0.0)
        else:
            icache_accesses = get("l1i_fetch_accesses", 0.0)
        icache_misses = get("l1i_misses", 0.0)
        stats["icache.ReadReq_accesses"] = icache_accesses
        stats["icache.ReadReq_hits"] = icache_accesses - icache_misses
        stats["icache.ReadReq_misses"] = icache_misses
        stats["icache.ReadReq_miss_latency"] = icache_misses * machine.l2.latency
        stats["icache.ReadReq_miss_rate"] = icache_misses / max(icache_accesses, 1.0)
        stats["icache.overall_accesses"] = icache_accesses
        stats["icache.overall_hits"] = icache_accesses - icache_misses
        stats["icache.overall_misses"] = icache_misses
        stats["icache.overall_miss_latency"] = icache_misses * machine.l2.latency
        stats["icache.overall_miss_rate"] = stats["icache.ReadReq_miss_rate"]
        stats["icache.overall_mshr_misses"] = icache_misses * 0.9
        stats["icache.overall_mshr_hits"] = icache_misses * 0.1
        stats["icache.replacements"] = icache_misses * 0.95
        stats["icache.tags.data_accesses"] = icache_accesses * 2.0

        d_rd = get("l1d_rd_accesses", 0.0)
        d_wr = get("l1d_wr_accesses", 0.0)
        d_rd_miss = get("l1d_rd_misses", 0.0)
        d_wr_miss = get("l1d_wr_misses", 0.0)
        stats["dcache.ReadReq_accesses"] = d_rd
        stats["dcache.ReadReq_hits"] = d_rd - d_rd_miss
        stats["dcache.ReadReq_misses"] = d_rd_miss
        stats["dcache.ReadReq_miss_latency"] = d_rd_miss * machine.l2.latency
        stats["dcache.WriteReq_accesses"] = d_wr
        stats["dcache.WriteReq_hits"] = d_wr - d_wr_miss
        stats["dcache.WriteReq_misses"] = d_wr_miss
        stats["dcache.WriteReq_miss_latency"] = d_wr_miss * machine.l2.latency
        stats["dcache.overall_accesses"] = d_rd + d_wr
        stats["dcache.overall_hits"] = d_rd + d_wr - d_rd_miss - d_wr_miss
        stats["dcache.overall_misses"] = d_rd_miss + d_wr_miss
        stats["dcache.overall_miss_rate"] = (d_rd_miss + d_wr_miss) / max(
            d_rd + d_wr, 1.0
        )
        stats["dcache.overall_mshr_misses"] = (d_rd_miss + d_wr_miss) * 0.85
        stats["dcache.overall_mshr_hits"] = (d_rd_miss + d_wr_miss) * 0.15
        stats["dcache.writebacks"] = get("l1d_writebacks", 0.0)
        stats["dcache.replacements"] = (d_rd_miss + d_wr_miss) * 0.95
        stats["dcache.UncacheableLatency_cpu_data"] = get("inst_strex", 0.0) * 10.0
        stats["dcache.blocked_cycles_no_mshrs"] = (d_rd_miss + d_wr_miss) * 0.3

        l2_rd = get("l2_rd_accesses", 0.0)
        l2_wr = get("l2_wr_accesses", 0.0)
        l2_rd_miss = get("l2_rd_misses", 0.0)
        l2_wr_miss = get("l2_wr_misses", 0.0)
        l2_misses = l2_rd_miss + l2_wr_miss
        stats["l2.ReadReq_accesses"] = l2_rd * 0.6
        stats["l2.ReadReq_hits"] = (l2_rd - l2_rd_miss) * 0.6
        stats["l2.ReadReq_misses"] = l2_rd_miss * 0.6
        stats["l2.ReadExReq_accesses"] = d_wr_miss
        stats["l2.ReadExReq_hits"] = max(d_wr_miss - l2_wr_miss, 0.0)
        stats["l2.ReadExReq_misses"] = l2_wr_miss
        stats["l2.ReadSharedReq_accesses"] = l2_rd * 0.4
        stats["l2.ReadSharedReq_hits"] = (l2_rd - l2_rd_miss) * 0.4
        stats["l2.WritebackDirty_accesses"] = get("l1d_writebacks", 0.0)
        stats["l2.WritebackClean_accesses"] = get("l1d_streaming_stores", 0.0)
        stats["l2.overall_accesses"] = l2_rd + l2_wr
        stats["l2.overall_hits"] = l2_rd + l2_wr - l2_misses
        stats["l2.overall_misses"] = l2_misses
        stats["l2.overall_miss_rate"] = l2_misses / max(l2_rd + l2_wr, 1.0)
        stats["l2.overall_miss_latency"] = (
            l2_misses * machine.dram_latency_ns * freq_hz * 1e-9
        )
        stats["l2.overall_mshr_misses"] = l2_misses * 0.9
        stats["l2.overall_avg_miss_latency"] = (
            machine.dram_latency_ns * freq_hz * 1e-9
        )
        stats["l2.writebacks"] = get("l2_writebacks", 0.0)
        stats["l2.replacements"] = l2_misses * 0.9
        stats["l2.prefetcher.num_hwpf_issued"] = get("l2_prefetches", 0.0)
        stats["l2.prefetcher.pfIssued"] = get("l2_prefetches", 0.0)

        # --- memory controller.
        dram_reads = get("dram_reads", 0.0)
        dram_writes = get("dram_writes", 0.0)
        stats["mem_ctrls.readReqs"] = dram_reads
        stats["mem_ctrls.writeReqs"] = dram_writes
        stats["mem_ctrls.totBusLat"] = (dram_reads + dram_writes) * machine.dram_latency_ns
        stats["mem_ctrls.avgRdQLen"] = min(dram_reads / max(cycles, 1.0) * 40.0, 16.0)
        stats["mem_ctrls.avgWrQLen"] = min(dram_writes / max(cycles, 1.0) * 40.0, 16.0)
        stats["mem_ctrls.bw_total"] = (
            (dram_reads + dram_writes) * 64.0 / max(sim_seconds, 1e-18)
        )

        return stats
