"""Distributed sharded campaigns: a file-backed job board with leases.

The paper's full validation sweep (65 workloads x two machine configs, every
DVFS point derived analytically) is embarrassingly parallel, but
:class:`~repro.sim.executor.SimExecutor` tops out at one process pool on one
host — and a lost pool used to mean a lost campaign.  This module scales the
same jobs across any number of *shard* processes (potentially on many hosts
sharing a filesystem) and survives worker loss without losing or duplicating
a single result:

* **Job board** — :class:`CampaignBoard` lays a campaign out under one
  shared directory: one immutable job file per
  :func:`~repro.sim.result_cache.cache_key`, a lease file per in-flight
  job (owner + attempt, heartbeat = the lease file's mtime), done/poison
  markers, and an append-only checksummed journal.  All board mutations
  are serialised by one advisory ``flock``, so claims and steals are
  atomic across processes and hosts.
* **Lease-based work stealing** — a worker claims the first unleased,
  unfinished job; a lease whose heartbeat is older than the board TTL is
  *expired* and deterministically stolen by the next claimant (attempt
  count incremented, journalled).  Expiry is judged against the shared
  filesystem's own clock (the mtime of a freshly touched probe file), so
  the protocol needs no wall-clock reads and works across hosts with
  skewed clocks.
* **Worker-loss recovery** — results land in a content-addressed
  :class:`~repro.sim.result_cache.ShardedResultStore` *before* the done
  marker, so a shard killed between the two leaves an orphaned-but-intact
  result that the stealing shard verifies and adopts instead of
  recomputing.  A job whose attempts exhaust the retry budget is poisoned
  (the cross-shard analogue of the executor's poison-job circuit breaker)
  and surfaced as a structured failure instead of wedging the campaign.
* **Incremental recompute** — :meth:`CampaignBoard.create_or_sync` diffs a
  new :class:`~repro.core.runstate.RunManifest` against the board: jobs
  whose content-addressed key still has a verified result are marked done
  (``job-reused``), invalidated or corrupt ones are re-queued, and keys no
  longer wanted are retired — all journalled, so tests can assert exactly
  which subgraph re-ran.

The coordinator (:func:`run_campaign`) spawns shards, supervises them,
drains any remainder inline if every shard dies, and finally *collates*
through a normal :class:`~repro.core.pipeline.GemStone` whose executor
reads the campaign's store — so a clean 2-shard campaign is bit-identical
to a serial run by construction.

``repro.core`` symbols are imported lazily inside functions: this module
lives in ``repro.sim``, which the core pipeline imports.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass

from repro.atomicio import atomic_write_text
from repro.obs.exporters import write_prometheus_snapshot
from repro.obs.log import get_logger
from repro.obs.merge import (
    autotune_hint,
    campaign_health,
    record_health_gauges,
    merge_board_metrics,
    registry_from_snapshot,
)
from repro.obs.metrics import MetricsRegistry, MetricView
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.executor import RetryPolicy
from repro.sim.faults import InjectedFault
from repro.sim.guard import GuardEvent, GuardPlan, guarded_simulate
from repro.sim.machine import (
    CacheGeometry,
    MachineConfig,
    hardware_a15,
    hardware_a7,
)
from repro.sim.result_cache import ShardedResultStore, cache_key
from repro.uarch.tlb import TlbHierarchyConfig
from repro.workloads.suites import workload_by_name
from repro.workloads.trace import compile_trace

logger = get_logger(__name__)

try:  # pragma: no cover - absent only on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]
    logger.debug("fcntl unavailable; advisory locking degrades to no-op")

#: Bump when the board layout or journal envelope changes.
BOARD_SCHEMA_VERSION = 1


def _journal_checksum(record: dict) -> str:
    """Checksum of a journal record (everything but its ``sha1`` field)."""
    return hashlib.sha1(
        json.dumps(record, sort_keys=True).encode()
    ).hexdigest()


class CampaignTelemetry(MetricView):
    """Campaign counters, a view over the ``sim.campaign.*`` metrics.

    Attributes:
        jobs_queued: Jobs newly added to the board.
        jobs_reused: Jobs satisfied by a verified existing result at sync.
        jobs_requeued: Jobs given back (sync invalidation or a job error).
        jobs_retired: Board jobs no longer wanted by the synced config.
        jobs_claimed: Leases granted (fresh claims and steals).
        leases_stolen: Expired leases taken over by another owner.
        jobs_done: Jobs marked done (computed or adopted).
        jobs_adopted: Done jobs whose result an earlier owner had stored.
        jobs_abandoned: Stalled claims dropped after losing the lease.
        jobs_poisoned: Jobs circuit-broken after exhausting the budget.
        job_errors: Job attempts that raised (requeued, not fatal).
        workers_started: Shard processes the coordinator spawned.
        workers_lost: Shard processes that exited abnormally.
    """

    _fields = {
        name: f"sim.campaign.{name}"
        for name in (
            "jobs_queued",
            "jobs_reused",
            "jobs_requeued",
            "jobs_retired",
            "jobs_claimed",
            "leases_stolen",
            "jobs_done",
            "jobs_adopted",
            "jobs_abandoned",
            "jobs_poisoned",
            "job_errors",
            "workers_started",
            "workers_lost",
        )
    }


# ------------------------------------------------------------------- jobs
@dataclass(frozen=True)
class CampaignJob:
    """One board job: everything a shard needs to recompute its key.

    Attributes:
        key: The :func:`~repro.sim.result_cache.cache_key` of the
            (trace, machine) pair — the job's identity on the board and in
            the result store.
        workload: Workload catalog name (the trace is recompiled from it).
        machine_name: Machine name, for humans and journals.
        machine: The full machine config as a plain dict
            (``dataclasses.asdict``), so ablated configs that exist under
            no catalog name survive the round trip.
        n_instrs: Trace length.
        ordinal: Deterministic job index (fault matching, stable ordering).
    """

    key: str
    workload: str
    machine_name: str
    machine: dict
    n_instrs: int
    ordinal: int


def machine_from_spec(spec: dict) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from its ``asdict`` form."""
    data = dict(spec)
    for level in ("l1i", "l1d", "l2"):
        data[level] = CacheGeometry(**data[level])
    data["tlb"] = TlbHierarchyConfig(**data["tlb"])
    return MachineConfig(**data)


def campaign_jobs(config) -> list[CampaignJob]:
    """The simulation jobs one resolved GemStone configuration needs.

    Validation workloads run on both the reference hardware and the gem5
    model; power workloads additionally run on hardware only (the power
    ground truth needs no gem5 pass).  Frequencies are applied
    analytically downstream, so the job unit is exactly the executor's:
    one (trace, machine) pair.
    """
    hardware = hardware_a15() if config.core == "A15" else hardware_a7()
    gem5 = config.resolve_machine()
    wanted: dict[tuple[str, str], tuple] = {}
    for profile in config.resolve_workloads():
        wanted[(profile.name, "hw")] = (profile, hardware)
        wanted[(profile.name, "gem5")] = (profile, gem5)
    for profile in config.resolve_power_workloads():
        wanted.setdefault((profile.name, "hw"), (profile, hardware))
    jobs = []
    for ordinal, (_, (profile, machine)) in enumerate(
        sorted(wanted.items(), key=lambda item: item[0])
    ):
        trace = compile_trace(profile, config.trace_instructions)
        jobs.append(
            CampaignJob(
                key=cache_key(trace, machine),
                workload=profile.name,
                machine_name=machine.name,
                machine=dataclasses.asdict(machine),
                n_instrs=int(config.trace_instructions),
                ordinal=ordinal,
            )
        )
    return jobs


@dataclass(frozen=True)
class Claim:
    """One granted lease: the job, its attempt count, and how it was won."""

    job: CampaignJob
    attempt: int
    stolen: bool


# ------------------------------------------------------------------ board
class CampaignBoard:
    """File-backed job board for one campaign under a shared directory.

    Layout::

        board.json           schema, fingerprint, ttl, retry budget
        board.lock           advisory flock serialising all mutations
        .clock               probe file; its mtime is the board's clock
        journal.jsonl        append-only checksummed event journal
        jobs/<key>.json      immutable job definitions
        state/<key>.json     mutable attempt/steal counters
        leases/<key>.lease   owner + attempt; mtime is the heartbeat
        done/<key>.json      completion markers
        poisoned/<key>.json  circuit-broken jobs with their reason
        results/<xx>/...     the ShardedResultStore

    Every mutation (claim, steal, release, done, poison, journal append)
    runs under the board's advisory lock, so any number of processes —
    on any number of hosts sharing the directory — see a consistent
    board.  Lease expiry compares mtimes against the mtime of a freshly
    touched probe file (:meth:`now`), never a wall clock.

    Args:
        directory: Board directory (created on demand).
        ttl_seconds: Heartbeat TTL; an older lease is stealable.
        max_attempts: Claims allowed per job before it is poisoned.
        prefix_chars: Key-prefix width of the result store shards.
        metrics: Shared registry for the ``sim.campaign.*`` counters.
    """

    def __init__(
        self,
        directory: str,
        ttl_seconds: float = 5.0,
        max_attempts: int = 3,
        prefix_chars: int = 2,
        metrics: MetricsRegistry | None = None,
    ):
        if ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive, got {ttl_seconds}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.directory = directory
        self.ttl_seconds = float(ttl_seconds)
        self.max_attempts = int(max_attempts)
        self.prefix_chars = int(prefix_chars)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.telemetry = CampaignTelemetry(self.metrics)
        for sub in ("jobs", "state", "leases", "done", "poisoned", "results",
                    "obs"):
            os.makedirs(os.path.join(directory, sub), exist_ok=True)

    @classmethod
    def open(
        cls, directory: str, metrics: MetricsRegistry | None = None
    ) -> "CampaignBoard":
        """Attach to an existing board, adopting its recorded settings.

        Raises:
            FileNotFoundError: When the directory holds no ``board.json``.
            ValueError: When the board was written by a newer schema.
        """
        with open(os.path.join(directory, "board.json")) as handle:
            meta = json.load(handle)
        if meta.get("schema") != BOARD_SCHEMA_VERSION:
            raise ValueError(
                f"board at {directory} has schema {meta.get('schema')!r}; "
                f"this build reads schema {BOARD_SCHEMA_VERSION}"
            )
        return cls(
            directory,
            ttl_seconds=meta["ttl_seconds"],
            max_attempts=meta["max_attempts"],
            prefix_chars=meta["prefix_chars"],
            metrics=metrics,
        )

    # ---------------------------------------------------------------- paths
    @property
    def meta_path(self) -> str:
        return os.path.join(self.directory, "board.json")

    @property
    def journal_path(self) -> str:
        return os.path.join(self.directory, "journal.jsonl")

    @property
    def results_dir(self) -> str:
        return os.path.join(self.directory, "results")

    def _job_path(self, key: str) -> str:
        return os.path.join(self.directory, "jobs", f"{key}.json")

    def _state_path(self, key: str) -> str:
        return os.path.join(self.directory, "state", f"{key}.json")

    def _lease_path(self, key: str) -> str:
        return os.path.join(self.directory, "leases", f"{key}.lease")

    def _done_path(self, key: str) -> str:
        return os.path.join(self.directory, "done", f"{key}.json")

    def _poison_path(self, key: str) -> str:
        return os.path.join(self.directory, "poisoned", f"{key}.json")

    def store(self, faults=None) -> ShardedResultStore:
        """The campaign's shared result store (one per call, same files)."""
        return ShardedResultStore(
            self.results_dir,
            faults=faults,
            metrics=self.metrics,
            prefix_chars=self.prefix_chars,
        )

    # ----------------------------------------------------------- primitives
    @contextlib.contextmanager
    def _lock(self):
        """Board-wide mutual exclusion over claims, steals and the journal.

        Degrades to an unlocked no-op (yielding False) where ``fcntl`` is
        unavailable — single-process boards still work there.
        """
        if fcntl is None:
            yield False
            return
        with open(os.path.join(self.directory, "board.lock"), "a") as handle:
            waited = time.perf_counter()
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                self.metrics.histogram(
                    "sim.campaign.board.flock_wait.seconds"
                ).observe(time.perf_counter() - waited)
                yield True
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def now(self) -> float:
        """The shared filesystem's clock: a touched probe file's mtime.

        Lease expiry compares this against lease mtimes, so the decision
        uses the *same* clock that stamped the heartbeat — meaningful
        across hosts with skewed wall clocks, and free of wall-clock reads
        (a determinism lint error in ``repro.sim``).
        """
        probe = os.path.join(self.directory, ".clock")
        with open(probe, "a"):
            pass
        os.utime(probe)
        return os.stat(probe).st_mtime

    def _append_journal(self, event: str, **fields) -> None:
        """Append one checksummed record; the caller holds the board lock.

        The next sequence number is re-derived from the journal tail on
        every append — boards have many writers, so no single process can
        own the counter.  Journals are small (a few records per job), so
        the re-read is cheap.
        """
        started = time.perf_counter()
        records = self.read_journal()
        seq = int(records[-1]["seq"]) + 1 if records else 0
        # ``clock`` stamps the record with the board's shared-filesystem
        # clock (never wall time), so ``campaign status --detail`` can
        # derive completion rates and an ETA from journal deltas.
        record = {"seq": seq, "event": event, "clock": self.now(), **fields}
        record["sha1"] = _journal_checksum(record)
        try:
            self._truncate_torn_tail(records)
            with open(self.journal_path, "a") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            logger.warning("campaign journal append failed: %s", exc)
        self.metrics.histogram(
            "sim.campaign.journal.append.seconds"
        ).observe(time.perf_counter() - started)

    def _truncate_torn_tail(self, records: list[dict]) -> None:
        """Drop a torn tail before appending (caller holds the lock).

        A writer dying mid-append leaves a partial last line; appends
        after it would be unreachable (reads stop at the first bad
        record), so the verified prefix is rewritten first.
        """
        try:
            with open(self.journal_path) as handle:
                lines = [line for line in handle if line.strip()]
        except FileNotFoundError:
            logger.debug("campaign journal not written yet; nothing to trim")
            return
        if len(lines) == len(records):
            return
        logger.warning(
            "campaign journal at %s has a torn tail "
            "(%d line(s), %d verified); truncating",
            self.journal_path, len(lines), len(records),
        )
        atomic_write_text(
            self.journal_path,
            "".join(
                json.dumps(record, sort_keys=True) + "\n"
                for record in records
            ),
        )

    def read_journal(self) -> list[dict]:
        """Verified journal records, oldest first (torn tail dropped)."""
        try:
            with open(self.journal_path) as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            logger.debug("campaign journal not written yet")
            return []
        except OSError as exc:
            logger.debug("campaign journal unreadable: %s", exc)
            return []
        records: list[dict] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                body = {k: v for k, v in record.items() if k != "sha1"}
                if _journal_checksum(body) != record["sha1"]:
                    raise ValueError("journal record checksum mismatch")
            except (ValueError, KeyError, TypeError) as exc:
                logger.debug("dropping torn journal tail: %s", exc)
                break
            records.append(record)
        return records

    def _read_json(self, path: str) -> dict | None:
        try:
            with open(path) as handle:
                return json.load(handle)
        except FileNotFoundError:
            logger.debug("board artifact absent: %s", path)
            return None
        except (OSError, ValueError) as exc:
            logger.debug("unreadable board artifact %s: %s", path, exc)
            return None

    def _read_state(self, key: str) -> dict:
        state = self._read_json(self._state_path(key))
        if state is None:
            return {"attempts": 0, "steals": 0}
        return {
            "attempts": int(state.get("attempts", 0)),
            "steals": int(state.get("steals", 0)),
        }

    def job_keys(self) -> list[str]:
        """Every job key on the board, sorted (the claim scan order)."""
        try:
            names = os.listdir(os.path.join(self.directory, "jobs"))
        except OSError as exc:
            logger.debug("board jobs dir unlistable: %s", exc)
            return []
        return sorted(
            name[: -len(".json")] for name in names if name.endswith(".json")
        )

    def load_job(self, key: str) -> CampaignJob | None:
        """The immutable job definition for one key, or None."""
        data = self._read_json(self._job_path(key))
        if data is None:
            return None
        return CampaignJob(**data)

    # ----------------------------------------------------------------- sync
    def create_or_sync(
        self, fingerprint: str, jobs: list[CampaignJob]
    ) -> dict[str, int]:
        """Bring the board in line with one manifest's job set.

        The incremental-recompute entry point: jobs whose content-addressed
        key already has a *verified* result are marked done (``job-reused``
        in the journal, never re-run); done markers whose result is missing
        or corrupt are re-queued with a fresh attempt budget; keys the new
        configuration no longer wants are retired.  Everything else is
        queued.  Returns the counts, which tests assert against the
        journal.
        """
        counts = {"queued": 0, "reused": 0, "requeued": 0, "retired": 0,
                  "pending": 0}
        store = self.store()
        with self._lock():
            meta = self._read_json(self.meta_path)
            if meta is None or meta.get("fingerprint") != fingerprint:
                atomic_write_text(
                    self.meta_path,
                    json.dumps(
                        {
                            "schema": BOARD_SCHEMA_VERSION,
                            "fingerprint": fingerprint,
                            "ttl_seconds": self.ttl_seconds,
                            "max_attempts": self.max_attempts,
                            "prefix_chars": self.prefix_chars,
                        },
                        indent=2,
                        sort_keys=True,
                    ),
                )
                self._append_journal(
                    "board-synced",
                    fingerprint=fingerprint,
                    previous=meta.get("fingerprint") if meta else None,
                )
            wanted = {job.key: job for job in jobs}
            known = set(self.job_keys())
            for key in sorted(known - set(wanted)):
                for path in (
                    self._job_path(key), self._state_path(key),
                    self._lease_path(key), self._done_path(key),
                    self._poison_path(key),
                ):
                    with contextlib.suppress(OSError):
                        os.remove(path)
                self._append_journal("job-retired", key=key)
                counts["retired"] += 1
            for key, job in sorted(
                wanted.items(), key=lambda item: item[1].ordinal
            ):
                if key not in known:
                    atomic_write_text(
                        self._job_path(key),
                        json.dumps(dataclasses.asdict(job), sort_keys=True),
                    )
                    self._append_journal(
                        "job-queued", key=key, workload=job.workload,
                        machine=job.machine_name,
                    )
                was_done = os.path.exists(self._done_path(key))
                if store.verify(key):
                    if not was_done:
                        atomic_write_text(
                            self._done_path(key),
                            json.dumps({"owner": "sync", "adopted": True}),
                        )
                        self._append_journal(
                            "job-reused", key=key, workload=job.workload
                        )
                    counts["reused"] += 1
                elif was_done:
                    # Done marker without an intact result: the store entry
                    # was invalidated or corrupted; give the job a fresh
                    # budget and re-queue it.
                    for path in (self._done_path(key), self._state_path(key)):
                        with contextlib.suppress(OSError):
                            os.remove(path)
                    self._append_journal(
                        "job-requeued", key=key, owner="sync",
                        reason="result missing or corrupt",
                    )
                    counts["requeued"] += 1
                elif key not in known:
                    counts["queued"] += 1
                else:
                    counts["pending"] += 1
        self.telemetry.jobs_queued += counts["queued"]
        self.telemetry.jobs_reused += counts["reused"]
        self.telemetry.jobs_requeued += counts["requeued"]
        self.telemetry.jobs_retired += counts["retired"]
        return counts

    # --------------------------------------------------------------- leasing
    def claim(self, owner: str) -> Claim | None:
        """Claim the first available job for ``owner``, or None.

        Scans keys in sorted order (deterministic across claimants): skips
        done/poisoned jobs and live leases, steals expired leases, and
        poisons jobs whose attempt count would exceed the board budget.
        """
        with self._lock():
            now = self.now()
            for key in self.job_keys():
                if os.path.exists(self._done_path(key)) or os.path.exists(
                    self._poison_path(key)
                ):
                    continue
                state = self._read_state(key)
                lease_path = self._lease_path(key)
                lease = self._read_json(lease_path)
                stolen = False
                if lease is not None:
                    try:
                        age = now - os.stat(lease_path).st_mtime
                    except OSError as exc:
                        logger.debug("lease vanished under claim: %s", exc)
                        age = self.ttl_seconds + 1.0
                    self.metrics.histogram(
                        "sim.campaign.lease.age.seconds"
                    ).observe(max(age, 0.0))
                    if age <= self.ttl_seconds:
                        continue
                    stolen = True
                if state["attempts"] >= self.max_attempts:
                    self._poison_locked(
                        key,
                        f"retry budget exhausted after "
                        f"{state['attempts']} attempt(s)",
                    )
                    continue
                attempt = state["attempts"] + 1
                atomic_write_text(
                    self._state_path(key),
                    json.dumps(
                        {
                            "attempts": attempt,
                            "steals": state["steals"] + int(stolen),
                        },
                        sort_keys=True,
                    ),
                )
                atomic_write_text(
                    lease_path,
                    json.dumps(
                        {"owner": owner, "attempt": attempt}, sort_keys=True
                    ),
                )
                if stolen:
                    self._append_journal(
                        "lease-stolen", key=key, owner=owner,
                        previous=(lease or {}).get("owner"), attempt=attempt,
                    )
                    self.telemetry.leases_stolen += 1
                else:
                    self._append_journal(
                        "lease-claimed", key=key, owner=owner, attempt=attempt
                    )
                self.telemetry.jobs_claimed += 1
                job = self.load_job(key)
                if job is None:
                    # The job file itself is gone or corrupt: poison rather
                    # than loop forever on an undecodable claim.
                    self._poison_locked(key, "job definition unreadable")
                    continue
                return Claim(job=job, attempt=attempt, stolen=stolen)
        return None

    def _poison_locked(self, key: str, reason: str) -> None:
        """Poison one job (caller holds the board lock)."""
        atomic_write_text(
            self._poison_path(key), json.dumps({"reason": reason})
        )
        with contextlib.suppress(OSError):
            os.remove(self._lease_path(key))
        self._append_journal("job-poisoned", key=key, reason=reason)
        self.telemetry.jobs_poisoned += 1

    def owns(self, key: str, owner: str) -> bool:
        """True while ``owner`` still holds the lease on ``key``."""
        lease = self._read_json(self._lease_path(key))
        return lease is not None and lease.get("owner") == owner

    def heartbeat(self, key: str, owner: str) -> bool:
        """Refresh the lease heartbeat; False once the lease was lost."""
        with self._lock():
            if not self.owns(key, owner):
                return False
            try:
                os.utime(self._lease_path(key))
            except OSError as exc:
                logger.debug("heartbeat on %s failed: %s", key, exc)
                return False
        return True

    def release(self, key: str, owner: str, reason: str = "") -> bool:
        """Give an errored job's lease back (requeue); no-op if not owner."""
        with self._lock():
            if not self.owns(key, owner):
                return False
            with contextlib.suppress(OSError):
                os.remove(self._lease_path(key))
            self._append_journal(
                "job-requeued", key=key, owner=owner, reason=reason
            )
        self.telemetry.jobs_requeued += 1
        return True

    def mark_done(self, key: str, owner: str, adopted: bool = False) -> None:
        """Mark one job complete and drop its lease."""
        with self._lock():
            atomic_write_text(
                self._done_path(key),
                json.dumps({"owner": owner, "adopted": bool(adopted)}),
            )
            with contextlib.suppress(OSError):
                os.remove(self._lease_path(key))
            self._append_journal(
                "job-done", key=key, owner=owner, adopted=bool(adopted)
            )
        self.telemetry.jobs_done += 1
        if adopted:
            self.telemetry.jobs_adopted += 1

    def note_abandoned(self, key: str, owner: str) -> None:
        """Journal a stalled claimant dropping a job it no longer owns."""
        with self._lock():
            self._append_journal("job-abandoned", key=key, owner=owner)
        self.telemetry.jobs_abandoned += 1

    # ---------------------------------------------------------------- status
    def all_settled(self) -> bool:
        """True once every board job is done or poisoned."""
        keys = self.job_keys()
        return all(
            os.path.exists(self._done_path(key))
            or os.path.exists(self._poison_path(key))
            for key in keys
        )

    def poisoned_jobs(self) -> tuple[tuple[str, str, str], ...]:
        """Every poisoned job as ``(key, workload, reason)``, sorted."""
        out = []
        for key in self.job_keys():
            marker = self._read_json(self._poison_path(key))
            if marker is None:
                continue
            job = self.load_job(key)
            out.append(
                (key, job.workload if job else "?", marker.get("reason", ""))
            )
        return tuple(out)

    def status(self) -> dict[str, int]:
        """Board-level counts: total/done/poisoned/leased/queued."""
        keys = self.job_keys()
        done = sum(1 for k in keys if os.path.exists(self._done_path(k)))
        poisoned = sum(
            1 for k in keys if os.path.exists(self._poison_path(k))
        )
        leased = sum(
            1
            for k in keys
            if os.path.exists(self._lease_path(k))
            and not os.path.exists(self._done_path(k))
        )
        return {
            "total": len(keys),
            "done": done,
            "poisoned": poisoned,
            "leased": leased,
            "queued": len(keys) - done - poisoned - leased,
        }


# ----------------------------------------------------------------- workers
@dataclass
class WorkerReport:
    """What one shard did over its lifetime (returned by run_worker)."""

    owner: str
    claimed: int = 0
    done: int = 0
    adopted: int = 0
    stolen: int = 0
    abandoned: int = 0
    errors: int = 0


def _heartbeat_loop(
    board: CampaignBoard, key: str, owner: str, stop: threading.Event
) -> None:
    interval = max(board.ttl_seconds / 3.0, 0.01)
    while not stop.wait(interval):
        if not board.heartbeat(key, owner):
            return


def _run_one(
    board: CampaignBoard,
    store: ShardedResultStore,
    job: CampaignJob,
    attempt: int,
    owner: str,
    engine: str,
    guard_plan,
    faults,
    in_worker: bool,
    report: WorkerReport,
    tracer: Tracer = NULL_TRACER,
) -> None:
    """One claimed job: adopt, or recompute + store + mark done."""
    if store.verify(job.key):
        # A previous owner stored the result but died before its done
        # marker (or sync raced us): adopt it, never recompute.
        board.mark_done(job.key, owner, adopted=True)
        report.adopted += 1
        report.done += 1
        return
    trace = compile_trace(workload_by_name(job.workload), job.n_instrs)
    machine = machine_from_spec(job.machine)
    derived = cache_key(trace, machine)
    if derived != job.key:
        raise RuntimeError(
            f"job key mismatch for {job.workload} on {job.machine_name}: "
            f"board says {job.key[:12]}, derived {derived[:12]}"
        )
    if faults is not None:
        faults.apply_job_fault(job.ordinal, job.workload, attempt,
                               in_worker=in_worker)
    result, _events, _sentinels = guarded_simulate(
        trace, machine, engine, guard_plan, faults, job.ordinal, attempt,
        tracer=tracer,
    )
    store.put(trace, machine, result)
    if faults is not None:
        crash = faults.shard_fault("stored", job.workload, attempt)
        if crash is not None:
            if in_worker:
                os._exit(1)
            raise InjectedFault(
                f"injected shard crash after storing {job.workload} "
                f"(attempt {attempt})"
            )
    board.mark_done(job.key, owner)
    report.done += 1


def run_worker(
    board_dir: str,
    owner: str | None = None,
    engine: str = "auto",
    guard_level: str = "off",
    faults=None,
    max_jobs: int | None = None,
    poll_seconds: float = 0.05,
    in_worker: bool = True,
    metrics: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> WorkerReport:
    """One shard's claim-execute loop over an existing board.

    Claims jobs until the board settles (every job done or poisoned) or
    ``max_jobs`` completions, heartbeating each lease from a background
    thread.  A job that raises is journalled and released for the next
    claimant; the board's attempt budget eventually poisons repeat
    offenders.  ``in_worker=False`` (the coordinator's inline drain) makes
    injected crash faults raise instead of killing the process.

    Returns:
        A :class:`WorkerReport` of everything this shard did.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    board = CampaignBoard.open(board_dir, metrics=metrics)
    store = board.store()
    guard_plan = GuardPlan.from_level(guard_level)
    if owner is None:
        owner = f"worker-{os.getpid()}"
    report = WorkerReport(owner=owner)
    worker_span = tracer.span("campaign-worker", kind="campaign", owner=owner)
    worker_span.__enter__()
    while max_jobs is None or report.done < max_jobs:
        claim = board.claim(owner)
        if claim is None:
            if board.all_settled():
                break
            time.sleep(poll_seconds)
            continue
        job, attempt = claim.job, claim.attempt
        report.claimed += 1
        if claim.stolen:
            report.stolen += 1
        # The span opens before the stall-fault window so a lease lost
        # under a live worker is visible on this shard's track (closed
        # with ``abandoned=True``) while the thief's track carries the
        # matching ``stolen=True`` span.
        jspan = tracer.span(
            "campaign-job", kind="campaign", workload=job.workload,
            machine=job.machine_name, attempt=attempt, owner=owner,
            stolen=claim.stolen,
        )
        with jspan:
            if faults is not None:
                # A lease-stall fault sleeps *before* the heartbeat thread
                # starts, so the lease genuinely expires under a live
                # worker.
                stall = faults.shard_fault("claimed", job.workload, attempt)
                if stall is not None:
                    time.sleep(stall.hang_seconds)
                    if not board.owns(job.key, owner):
                        board.note_abandoned(job.key, owner)
                        report.abandoned += 1
                        jspan.set(abandoned=True)
                        continue
            stop = threading.Event()
            beat = threading.Thread(
                target=_heartbeat_loop, args=(board, job.key, owner, stop),
                daemon=True,
            )
            beat.start()
            started = time.perf_counter()
            try:
                _run_one(board, store, job, attempt, owner, engine,
                         guard_plan, faults, in_worker, report, tracer)
                board.metrics.histogram(
                    "sim.campaign.job.seconds"
                ).observe(time.perf_counter() - started)
            except Exception as exc:
                report.errors += 1
                board.telemetry.job_errors += 1
                jspan.set(failed=True, error=type(exc).__name__)
                logger.warning(
                    "campaign job %s on %s failed on attempt %d: %s",
                    job.workload, job.machine_name, attempt, exc,
                )
                board.release(
                    job.key, owner, reason=f"{type(exc).__name__}: {exc}"
                )
            finally:
                stop.set()
                beat.join()
    worker_span.set(
        claimed=report.claimed, done=report.done, stolen=report.stolen,
        abandoned=report.abandoned, errors=report.errors,
    )
    worker_span.__exit__(None, None, None)
    return report


def _worker_entry(
    board_dir, owner, engine, guard_level, faults, max_jobs, poll_seconds,
    trace=False,
):
    """Spawned-shard entry point (module-level for picklability).

    Every shard owns a private metrics registry and (when ``trace`` is
    set) a tracer streaming checksummed segments into
    ``<board_dir>/obs/<owner>/events.jsonl``.  The metrics snapshot is
    written even on an error exit — only a SIGKILL loses it, and the
    coordinator-side merge tolerates the gap.
    """
    obs_dir = os.path.join(board_dir, "obs", owner)
    metrics = MetricsRegistry()
    tracer = Tracer(
        enabled=bool(trace),
        stream_path=(
            os.path.join(obs_dir, "events.jsonl") if trace else None
        ),
        metrics=metrics,
    )
    try:
        run_worker(
            board_dir,
            owner=owner,
            engine=engine,
            guard_level=guard_level,
            faults=faults,
            max_jobs=max_jobs,
            poll_seconds=poll_seconds,
            in_worker=True,
            metrics=metrics,
            tracer=tracer,
        )
    finally:
        tracer.close()
        os.makedirs(obs_dir, exist_ok=True)
        snapshot_path = os.path.join(obs_dir, "metrics.json")
        # Cumulative across campaign resumes: an owner re-spawned on the
        # same board folds its previous snapshot in, so the merged
        # campaign snapshot keeps matching the (append-only) journal.
        cumulative = MetricsRegistry()
        try:
            with open(snapshot_path) as handle:
                prior = json.load(handle)
            if isinstance(prior, dict):
                cumulative.absorb(registry_from_snapshot(prior))
        except (OSError, ValueError, TypeError, KeyError) as exc:
            logger.warning(
                "prior shard snapshot unusable (%s: %s); starting fresh",
                type(exc).__name__, exc,
            )
        cumulative.absorb(metrics)
        atomic_write_text(
            snapshot_path,
            json.dumps(cumulative.snapshot(), sort_keys=True) + "\n",
        )


# -------------------------------------------------------------- coordinator
@dataclass
class CampaignResult:
    """Outcome of one coordinated campaign.

    Attributes:
        board_dir: The board directory everything lives under.
        shards: Shard processes requested.
        sync: The :meth:`CampaignBoard.create_or_sync` counts.
        status: Final board counts (total/done/poisoned/leased/queued).
        poisoned: ``(key, workload, reason)`` of circuit-broken jobs.
        lost_shards: Shard processes that exited abnormally.
        health: A :class:`~repro.core.validation.CollectionHealth` holding
            the structured shard-loss / lease-steal / poison records.
        counters: The coordinator's ``sim.campaign.*`` counter values.
        gemstone: The collation :class:`~repro.core.pipeline.GemStone`
            (reading the campaign's store) when ``collate=True``.
        summary: Deterministic campaign section data (job counts, steal /
            abandon totals, the shard-count auto-tune hint) rendered into
            the collation report.
    """

    board_dir: str
    shards: int
    sync: dict
    status: dict
    poisoned: tuple
    lost_shards: int
    health: object
    counters: dict
    gemstone: object | None = None
    summary: dict | None = None

    @property
    def degraded(self) -> bool:
        return bool(self.poisoned or self.lost_shards)


def run_campaign(
    config,
    board_dir: str,
    shards: int = 2,
    ttl_seconds: float = 5.0,
    max_attempts: int | None = None,
    max_jobs_per_shard: int | None = None,
    poll_seconds: float = 0.05,
    collate: bool = True,
    tracer: Tracer | None = None,
) -> CampaignResult:
    """Coordinate one sharded campaign end to end.

    Syncs the board against the config's manifest (incremental recompute:
    verified results are reused, invalidated keys re-queued), spawns
    ``shards`` worker processes, supervises them — if every shard dies
    with work outstanding, the remainder is drained inline so the campaign
    always converges — then reaps exit codes into structured
    ``shard-lost`` guard events and collates through a normal
    :class:`~repro.core.pipeline.GemStone` whose executor reads the
    campaign's result store.  A clean campaign's datasets are bit-identical
    to a serial run; one with shards killed mid-flight converges to the
    same bytes via lease stealing and result adoption.

    Args:
        config: A :class:`~repro.core.pipeline.GemStoneConfig`.
        board_dir: Shared directory for the board (created on demand).
        shards: Worker processes to spawn (>= 1).
        ttl_seconds: Lease heartbeat TTL.
        max_attempts: Claims per job before poisoning; defaults to the
            config's retry policy budget.
        max_jobs_per_shard: Optional per-shard completion cap (tests use
            it to simulate a coordinator killed mid-campaign).
        poll_seconds: Supervision/idle-claim poll interval.
        collate: Build the collation GemStone (datasets, report) once the
            board settles.
        tracer: Coordinator-side tracer; shard workers always stream
            their own tracers into ``<board>/obs/<owner>/`` regardless.

    Raises:
        ValueError: For a non-positive ``shards``.
    """
    import multiprocessing

    from repro.core.runstate import RunManifest
    from repro.core.validation import CollectionHealth

    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    tracer = tracer if tracer is not None else NULL_TRACER
    retry = config.retry if config.retry is not None else RetryPolicy()
    if max_attempts is None:
        max_attempts = retry.max_attempts
    manifest = RunManifest.from_config(config)
    board = CampaignBoard(
        board_dir, ttl_seconds=ttl_seconds, max_attempts=max_attempts
    )
    health = CollectionHealth()
    lost = 0
    with tracer.span(
        "campaign", kind="campaign", shards=shards, board=board_dir
    ):
        sync = board.create_or_sync(manifest.fingerprint, campaign_jobs(config))
        logger.info(
            "campaign board %s synced: %d queued, %d reused, %d requeued, "
            "%d retired", board_dir, sync["queued"], sync["reused"],
            sync["requeued"], sync["retired"],
        )
        procs: list = []
        if not board.all_settled():
            ctx = multiprocessing.get_context()
            for i in range(shards):
                proc = ctx.Process(
                    target=_worker_entry,
                    args=(board_dir, f"shard-{i}", config.engine,
                          config.guard_level, config.faults,
                          max_jobs_per_shard, poll_seconds,
                          tracer.enabled),
                )
                proc.start()
                procs.append(proc)
            board.telemetry.workers_started += len(procs)
            while not board.all_settled():
                if not any(proc.is_alive() for proc in procs):
                    # Every shard is gone (finished, crashed or capped)
                    # with work outstanding: drain inline so the campaign
                    # always converges.  Injected crash faults raise here
                    # instead of killing the coordinator, so the attempt
                    # budget can poison repeat offenders.
                    logger.warning(
                        "all %d shard(s) exited with work outstanding; "
                        "draining inline", len(procs),
                    )
                    run_worker(
                        board_dir, owner="coordinator",
                        engine=config.engine,
                        guard_level=config.guard_level,
                        faults=config.faults, in_worker=False,
                        poll_seconds=poll_seconds,
                        metrics=board.metrics, tracer=tracer,
                    )
                    break
                time.sleep(poll_seconds)
            for proc in procs:
                proc.join()
            for i, proc in enumerate(procs):
                if proc.exitcode not in (0, None):
                    lost += 1
                    health.record_guard_event(
                        GuardEvent(
                            kind="shard-lost", workload="*", machine="*",
                            action="observe",
                            detail=(
                                f"shard-{i} exited with code {proc.exitcode}"
                            ),
                        )
                    )
            board.telemetry.workers_lost += lost
    for record in board.read_journal():
        if record.get("event") == "lease-stolen":
            job = board.load_job(str(record.get("key", "")))
            health.record_guard_event(
                GuardEvent(
                    kind="lease-steal",
                    workload=job.workload if job else "?",
                    machine=job.machine_name if job else "*",
                    action="observe",
                    detail=(
                        f"{record.get('owner')} stole attempt "
                        f"{record.get('attempt')} from "
                        f"{record.get('previous')}"
                    ),
                )
            )
    poisoned = board.poisoned_jobs()
    for _key, workload, reason in poisoned:
        health.record_failure(
            workload, 0.0, "campaign", RuntimeError(reason)
        )
    status = board.status()
    journal = board.read_journal()
    stolen = sum(1 for r in journal if r.get("event") == "lease-stolen")
    journal_claims = sum(
        1
        for r in journal
        if r.get("event") in ("lease-claimed", "lease-stolen")
    )
    abandoned = sum(
        1 for r in journal if r.get("event") == "job-abandoned"
    )
    # The campaign summary is built from journal- and board-derived counts
    # only — no wall-clock, no per-owner scheduling detail — so a clean
    # campaign's report stays byte-identical traced or untraced.  The
    # wall-clock health view (contention index, straggler skew) lives in
    # the merged Prometheus snapshot and ``campaign status --detail``.
    summary = {
        "shards": shards,
        "total": status["total"],
        "done": status["done"],
        "poisoned": status["poisoned"],
        "reused": sync["reused"],
        "requeued": sync["requeued"],
        "stolen": stolen,
        "abandoned": abandoned,
        "hint": autotune_hint(
            shards,
            status["total"],
            stolen / journal_claims if journal_claims else 0.0,
        ),
    }
    # Publish the campaign observability artifacts: the coordinator's own
    # metric snapshot (cumulative across resumes, like the shards') and
    # the merged campaign Prometheus snapshot over every obs/ snapshot.
    obs_dir = os.path.join(board_dir, "obs")
    coordinator_obs = os.path.join(obs_dir, "coordinator")
    os.makedirs(coordinator_obs, exist_ok=True)
    coordinator_path = os.path.join(coordinator_obs, "metrics.json")
    coordinator_registry = MetricsRegistry()
    try:
        with open(coordinator_path) as handle:
            prior = json.load(handle)
        if isinstance(prior, dict):
            coordinator_registry.absorb(registry_from_snapshot(prior))
    except (OSError, ValueError, TypeError, KeyError) as exc:
        logger.warning(
            "prior coordinator snapshot unusable (%s: %s); starting fresh",
            type(exc).__name__, exc,
        )
    coordinator_registry.absorb(board.metrics)
    atomic_write_text(
        coordinator_path,
        json.dumps(coordinator_registry.snapshot(), sort_keys=True) + "\n",
    )
    merged = merge_board_metrics(board_dir)
    record_health_gauges(merged, campaign_health(merged))
    write_prometheus_snapshot(merged, os.path.join(obs_dir, "metrics.prom"))
    result = CampaignResult(
        board_dir=board_dir,
        shards=shards,
        sync=sync,
        status=status,
        poisoned=poisoned,
        lost_shards=lost,
        health=health,
        counters=board.metrics.values_with_prefix("sim.campaign."),
        gemstone=None,
        summary=summary,
    )
    if collate:
        from repro.core.pipeline import GemStone

        gemstone = GemStone(dataclasses.replace(config, board_dir=board_dir))
        # The campaign counters and the structured degradation records
        # travel with the collation run, so its report and metric
        # snapshots tell the whole story.
        gemstone.metrics.absorb(board.metrics)
        gemstone.campaign = summary
        for event in health.guard_events:
            gemstone.health.record_guard_event(event)
            gemstone.executor.guard.record(event)
        for failure in health.failures:
            gemstone.health.failures.append(failure)
        result = dataclasses.replace(result, gemstone=gemstone)
    return result
