"""On-disk memoisation of simulation results.

GemStone is rerun constantly — after every model adjustment, every simulator
update (Section VII's workflow).  Simulation results depend only on the
(trace, machine configuration) pair, both of which are fully deterministic,
so they are safely memoised on disk: the cache key hashes the *entire*
machine configuration (not just its name — ablation studies mutate configs
in place) together with the trace identity.

The hardware platform and the gem5 simulation both accept a ``cache_dir``;
re-running an evaluation after a restart then costs seconds, not minutes.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os

from repro.sim.cpu import SimResult
from repro.sim.machine import MachineConfig
from repro.workloads.trace import SyntheticTrace

#: Bump when SimResult's meaning changes; invalidates every cached entry.
CACHE_SCHEMA_VERSION = 2


def machine_fingerprint(machine: MachineConfig) -> str:
    """Stable hash of every field of a machine configuration."""
    payload = json.dumps(dataclasses.asdict(machine), sort_keys=True)
    return hashlib.sha1(payload.encode()).hexdigest()


def cache_key(trace: SyntheticTrace, machine: MachineConfig) -> str:
    """Cache key for one (trace, machine) simulation."""
    raw = "|".join(
        [
            f"v{CACHE_SCHEMA_VERSION}",
            trace.name,
            str(trace.seed),
            str(trace.n_instrs),
            machine_fingerprint(machine),
        ]
    )
    return hashlib.sha1(raw.encode()).hexdigest()


class SimResultCache:
    """A directory of JSON-serialised :class:`SimResult` objects."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(
        self, trace: SyntheticTrace, machine: MachineConfig
    ) -> SimResult | None:
        """Cached result for this simulation, or None.

        Corrupt entries are treated as misses and removed.
        """
        path = self._path(cache_key(trace, machine))
        if not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                data = json.load(handle)
            return SimResult(
                machine=machine,
                trace_name=data["trace_name"],
                threads=int(data["threads"]),
                counts={k: float(v) for k, v in data["counts"].items()},
                core_cycles=float(data["core_cycles"]),
                dram_stall_weight=float(data["dram_stall_weight"]),
                components={k: float(v) for k, v in data["components"].items()},
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            # Another process may have already replaced or removed the
            # corrupt entry (the executor's workers share this directory).
            with contextlib.suppress(FileNotFoundError):
                os.remove(path)
            return None

    def put(
        self, trace: SyntheticTrace, machine: MachineConfig, result: SimResult
    ) -> None:
        """Store one simulation result (atomic write)."""
        path = self._path(cache_key(trace, machine))
        payload = {
            "trace_name": result.trace_name,
            "threads": result.threads,
            "counts": result.counts,
            "core_cycles": result.core_cycles,
            "dram_stall_weight": result.dram_stall_weight,
            "components": result.components,
        }
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)

    def clear(self) -> int:
        """Remove all cached entries; returns the number removed."""
        removed = 0
        for name in os.listdir(self.directory):
            if name.endswith(".json"):
                os.remove(os.path.join(self.directory, name))
                removed += 1
        return removed

    def __len__(self) -> int:
        return sum(
            1 for name in os.listdir(self.directory) if name.endswith(".json")
        )
