"""On-disk memoisation of simulation results, with integrity checking.

GemStone is rerun constantly — after every model adjustment, every simulator
update (Section VII's workflow).  Simulation results depend only on the
(trace, machine configuration) pair, both of which are fully deterministic,
so they are safely memoised on disk: the cache key hashes the *entire*
machine configuration (not just its name — ablation studies mutate configs
in place) together with the trace identity.

Entries are stored as a small envelope — schema version + payload checksum
around the serialised result — so a half-written or bit-rotted file is
*detected* on read rather than deserialised into silently wrong numbers.
Corrupt entries are quarantined to ``<cache>/quarantine/`` (kept for
post-mortems, out of the key namespace so they can never poison another
run) and counted in :class:`CacheTelemetry`.  Writes fsync before the
atomic rename; a full or read-only cache directory degrades the cache to
uncached operation with a single warning instead of aborting a batch.

The hardware platform and the gem5 simulation both accept a ``cache_dir``;
re-running an evaluation after a restart then costs seconds, not minutes.

Campaign mode shares one store between many worker *processes on many
hosts*: :class:`ShardedResultStore` spreads the same envelopes across
key-prefix subdirectories (each one a plain :class:`SimResultCache`, so
entries are relocatable between flat and sharded layouts), and every
mutating path — the ``put`` replace and the quarantine move — runs under an
advisory per-directory ``flock`` so concurrent shards cannot race a
quarantine against a replace.  Locking is a no-op on platforms without
``fcntl``; single-process behaviour is byte-identical either way.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import warnings

from repro.atomicio import atomic_write_text
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, MetricView
from repro.sim.cpu import SimResult
from repro.sim.machine import MachineConfig
from repro.workloads.trace import SyntheticTrace

logger = get_logger(__name__)

try:  # pragma: no cover - absent only on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]
    logger.debug("fcntl unavailable; advisory locking degrades to no-op")

#: Name of the advisory lock file inside each cache directory.  It never
#: matches the ``*.json`` entry pattern, so ``clear``/``__len__`` ignore it.
LOCK_FILE_NAME = ".lock"


@contextlib.contextmanager
def advisory_lock(directory: str):
    """Exclusive advisory lock over one cache directory's mutations.

    Serialises the replace-vs-quarantine races of multiple *processes*
    sharing a directory (threads of one process already serialise on the
    GIL around the short critical sections involved).  Yields True while
    the lock is held; on platforms without ``fcntl``, or when the lock
    file itself cannot be opened (read-only or vanished directory), it
    degrades to an unlocked no-op and yields False — the caller's atomic
    writes are still individually safe, just not mutually ordered.
    """
    if fcntl is None:
        yield False
        return
    path = os.path.join(directory, LOCK_FILE_NAME)
    try:
        handle = open(path, "a")
    except OSError as exc:
        logger.debug("advisory lock at %s unavailable: %s", path, exc)
        yield False
        return
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield True
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
    finally:
        handle.close()

#: Bump when SimResult's meaning or the entry format changes; invalidates
#: every cached entry (v3: checksummed envelope format).
CACHE_SCHEMA_VERSION = 3


def machine_fingerprint(machine: MachineConfig) -> str:
    """Stable hash of every field of a machine configuration."""
    payload = json.dumps(dataclasses.asdict(machine), sort_keys=True)
    return hashlib.sha1(payload.encode()).hexdigest()


def cache_key(trace: SyntheticTrace, machine: MachineConfig) -> str:
    """Cache key for one (trace, machine) simulation."""
    raw = "|".join(
        [
            f"v{CACHE_SCHEMA_VERSION}",
            trace.name,
            str(trace.seed),
            str(trace.n_instrs),
            machine_fingerprint(machine),
        ]
    )
    return hashlib.sha1(raw.encode()).hexdigest()


def _payload_checksum(payload: dict) -> str:
    """Order-independent checksum of a JSON-serialisable payload."""
    return hashlib.sha1(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


class CacheTelemetry(MetricView):
    """Counters for one cache instance's lifetime.

    A view over the ``sim.cache.*`` counters of a
    :class:`~repro.obs.metrics.MetricsRegistry` (shared with the executor
    when the cache is built by one); the attribute API is unchanged.

    Attributes:
        hits: Reads answered from a verified entry.
        misses: Reads with no entry on disk.
        quarantined: Corrupt entries moved to the quarantine directory.
        put_failures: Writes abandoned because the directory is unusable.
    """

    _fields = {
        name: f"sim.cache.{name}"
        for name in ("hits", "misses", "quarantined", "put_failures")
    }


class SimResultCache:
    """A directory of checksummed, JSON-serialised :class:`SimResult` objects.

    Args:
        directory: Cache directory (created on demand).  When creation or a
            write fails (full or read-only filesystem) the cache degrades to
            uncached operation — reads still work where possible, writes
            become no-ops — after a single warning.
        faults: Optional :class:`~repro.sim.faults.FaultPlan`; its
            ``corrupt-cache`` faults garble matching writes so the
            quarantine path can be exercised deterministically.
        metrics: Shared :class:`~repro.obs.metrics.MetricsRegistry` the
            ``sim.cache.*`` counters live in; private when not given.
    """

    def __init__(
        self,
        directory: str,
        faults=None,
        metrics: MetricsRegistry | None = None,
    ):
        self.directory = directory
        self.faults = faults
        self.telemetry = CacheTelemetry(metrics)
        self.degraded = False
        self._warned = False
        self._put_counts: dict[str, int] = {}
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            self._degrade(exc)

    @property
    def quarantine_dir(self) -> str:
        """Where corrupt entries are preserved for post-mortems."""
        return os.path.join(self.directory, "quarantine")

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def _degrade(self, exc: OSError) -> None:
        self.degraded = True
        self.telemetry.put_failures += 1
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"simulation cache at {self.directory} is unusable ({exc}); "
                "degrading to uncached operation",
                RuntimeWarning,
                stacklevel=3,
            )

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry out of the key namespace, keeping the bytes.

        The destination name carries a content hash of the corrupt bytes:
        repeated corruptions of the *same* key (a flaky disk region, a
        fault plan corrupting every write) land as distinct post-mortem
        artifacts instead of silently overwriting each other.

        The whole move runs under the directory's advisory lock so a
        concurrent shard's fresh ``put`` of the same key cannot be swept
        into quarantine between our corrupt read and the ``os.replace``.
        """
        self.telemetry.quarantined += 1
        with advisory_lock(self.directory):
            try:
                with open(path, "rb") as handle:
                    digest = hashlib.sha1(handle.read()).hexdigest()[:12]
            except OSError as exc:
                logger.debug("quarantine of %s could not hash the bytes: %s", path, exc)
                digest = "unreadable"
            stem, ext = os.path.splitext(os.path.basename(path))
            try:
                os.makedirs(self.quarantine_dir, exist_ok=True)
                dest = os.path.join(self.quarantine_dir, f"{stem}-{digest}{ext}")
                os.replace(path, dest)
            except OSError as exc:
                # Read-only directory or a concurrent quarantine: removal (or
                # nothing) is the best we can do; the entry is a miss either way.
                logger.debug("quarantine of %s failed (%s); removing instead", path, exc)
                with contextlib.suppress(OSError):
                    os.remove(path)

    def get(
        self, trace: SyntheticTrace, machine: MachineConfig
    ) -> SimResult | None:
        """Cached result for this simulation, or None.

        Entries failing the schema/checksum integrity check are quarantined
        and treated as misses.
        """
        path = self._path(cache_key(trace, machine))
        try:
            with open(path) as handle:
                data = json.load(handle)
        except FileNotFoundError:
            self.telemetry.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            return None
        try:
            if data["schema"] != CACHE_SCHEMA_VERSION:
                raise ValueError(f"schema {data['schema']}")
            payload = data["payload"]
            if _payload_checksum(payload) != data["checksum"]:
                raise ValueError("checksum mismatch")
            result = SimResult(
                machine=machine,
                trace_name=payload["trace_name"],
                threads=int(payload["threads"]),
                counts={k: float(v) for k, v in payload["counts"].items()},
                core_cycles=float(payload["core_cycles"]),
                dram_stall_weight=float(payload["dram_stall_weight"]),
                components={k: float(v) for k, v in payload["components"].items()},
            )
        except (KeyError, TypeError, ValueError, AttributeError):
            self._quarantine(path)
            return None
        self.telemetry.hits += 1
        return result

    def verify(self, key: str) -> bool:
        """True when a structurally intact entry exists for this key.

        Campaign workers use this to adopt results a crashed shard already
        stored (by key, without re-deriving the trace): corrupt entries
        (bad JSON, wrong schema, checksum mismatch) are quarantined so the
        job is recomputed; a missing entry is simply False.
        """
        path = self._path(key)
        try:
            with open(path) as handle:
                data = json.load(handle)
        except FileNotFoundError:
            self.telemetry.misses += 1
            return False
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path)
            return False
        try:
            if data["schema"] != CACHE_SCHEMA_VERSION:
                raise ValueError(f"schema {data['schema']}")
            if _payload_checksum(data["payload"]) != data["checksum"]:
                raise ValueError("checksum mismatch")
        except (KeyError, TypeError, ValueError):
            self._quarantine(path)
            return False
        self.telemetry.hits += 1
        return True

    def put(
        self, trace: SyntheticTrace, machine: MachineConfig, result: SimResult
    ) -> None:
        """Store one simulation result (fsync + atomic rename).

        A failed write (full or read-only filesystem) degrades the cache to
        uncached operation with a single warning; it never raises mid-batch.
        """
        if self.degraded:
            return
        key = cache_key(trace, machine)
        path = self._path(key)
        payload = {
            "trace_name": result.trace_name,
            "threads": result.threads,
            "counts": result.counts,
            "core_cycles": result.core_cycles,
            "dram_stall_weight": result.dram_stall_weight,
            "components": result.components,
        }
        nth_put = self._put_counts.get(key, 0) + 1
        self._put_counts[key] = nth_put
        if self.faults is not None and self.faults.corrupts_cache(
            trace.name, nth_put
        ):
            # Injected corruption: a truncated write, as if the process died
            # (or the disk filled) between write and fsync.
            body = f'{{"schema": {CACHE_SCHEMA_VERSION}, "checksum": "dead'
        else:
            body = json.dumps(
                {
                    "schema": CACHE_SCHEMA_VERSION,
                    "checksum": _payload_checksum(payload),
                    "payload": payload,
                }
            )
        try:
            with advisory_lock(self.directory):
                atomic_write_text(path, body)
        except OSError as exc:
            self._degrade(exc)

    def clear(self) -> int:
        """Remove all cached entries; returns the number removed."""
        removed = 0
        try:
            names = os.listdir(self.directory)
        except OSError as exc:
            logger.debug("cache clear skipped, %s unlistable: %s", self.directory, exc)
            return 0
        for name in names:
            if name.endswith(".json"):
                with contextlib.suppress(OSError):
                    os.remove(os.path.join(self.directory, name))
                    removed += 1
        return removed

    def __len__(self) -> int:
        try:
            names = os.listdir(self.directory)
        except OSError as exc:
            logger.debug("cache len 0, %s unlistable: %s", self.directory, exc)
            return 0
        return sum(1 for name in names if name.endswith(".json"))


class ShardedResultStore:
    """Content-addressed result store sharded by key-hash prefix.

    Generalises :class:`SimResultCache` for campaign mode, where many
    worker processes (potentially on many hosts sharing a filesystem)
    write into one store: entries are spread over ``prefix_chars``-wide
    key-prefix subdirectories, each a plain :class:`SimResultCache`, so
    the envelope format, checksum verification and quarantine semantics
    are identical and individual entries are relocatable between the flat
    and sharded layouts by moving files.  Sharding bounds per-directory
    entry counts and spreads the advisory-lock contention of concurrent
    writers across ``16**prefix_chars`` independent locks.

    Args:
        directory: Store root (created on demand).
        faults: Optional fault plan, forwarded to every shard.
        metrics: Shared registry for the ``sim.cache.*`` counters; all
            shards aggregate into the same counters.
        prefix_chars: Key-prefix width; 2 (the default) gives 256 shards,
            plenty below a million entries.
    """

    def __init__(
        self,
        directory: str,
        faults=None,
        metrics: MetricsRegistry | None = None,
        prefix_chars: int = 2,
    ):
        self.directory = directory
        self.faults = faults
        self.prefix_chars = prefix_chars
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.telemetry = CacheTelemetry(self.metrics)
        self._shards: dict[str, SimResultCache] = {}
        self._root_degraded = False
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            self._root_degraded = True
            warnings.warn(
                f"sharded result store at {directory} is unusable ({exc}); "
                "degrading to uncached operation",
                RuntimeWarning,
                stacklevel=2,
            )

    def _shard(self, key: str) -> SimResultCache:
        prefix = key[: self.prefix_chars]
        shard = self._shards.get(prefix)
        if shard is None:
            shard = SimResultCache(
                os.path.join(self.directory, prefix),
                faults=self.faults,
                metrics=self.metrics,
            )
            self._shards[prefix] = shard
        return shard

    @property
    def degraded(self) -> bool:
        """True once the root or any opened shard has degraded."""
        if self._root_degraded:
            return True
        return any(shard.degraded for shard in self._shards.values())

    def get(
        self, trace: SyntheticTrace, machine: MachineConfig
    ) -> SimResult | None:
        """Cached result for this simulation, or None."""
        if self._root_degraded:
            return None
        return self._shard(cache_key(trace, machine)).get(trace, machine)

    def put(
        self, trace: SyntheticTrace, machine: MachineConfig, result: SimResult
    ) -> None:
        """Store one simulation result in its key-prefix shard."""
        if self._root_degraded:
            return
        self._shard(cache_key(trace, machine)).put(trace, machine, result)

    def verify(self, key: str) -> bool:
        """True when a structurally intact entry exists for this key."""
        if self._root_degraded:
            return False
        return self._shard(key).verify(key)

    def clear(self) -> int:
        """Remove all cached entries across shards; returns the count."""
        removed = 0
        for prefix in self._prefixes():
            removed += self._shard(prefix).clear()
        return removed

    def _prefixes(self) -> list[str]:
        """Sorted key-prefix subdirectories that exist on disk."""
        try:
            names = os.listdir(self.directory)
        except OSError as exc:
            logger.debug("store at %s unlistable: %s", self.directory, exc)
            return []
        return sorted(
            name
            for name in names
            if len(name) == self.prefix_chars
            and all(c in "0123456789abcdef" for c in name)
            and os.path.isdir(os.path.join(self.directory, name))
        )

    def __len__(self) -> int:
        return sum(len(self._shard(prefix)) for prefix in self._prefixes())


def cache_spec(cache) -> tuple | None:
    """Picklable description of a cache, for reconstruction in workers.

    Pool workers cannot receive the cache object itself (it holds a
    metrics registry and open telemetry); they receive this small tuple
    and rebuild an equivalent writer over the same directory.
    """
    if cache is None:
        return None
    if isinstance(cache, ShardedResultStore):
        return ("sharded", cache.directory, cache.prefix_chars)
    return ("plain", cache.directory)


def open_cache_spec(spec: tuple | None, faults=None):
    """Rebuild the cache a :func:`cache_spec` tuple describes."""
    if spec is None:
        return None
    if spec[0] == "sharded":
        return ShardedResultStore(spec[1], faults=faults, prefix_chars=spec[2])
    return SimResultCache(spec[1], faults=faults)
