"""The shared trace-driven CPU simulator.

Both the hardware reference platform and the gem5-style model run workloads
through this simulator; only the :class:`~repro.sim.machine.MachineConfig`
differs.  The simulator replays a block-structured
:class:`~repro.workloads.trace.SyntheticTrace` against concrete cache, TLB
and branch-predictor state and produces:

* micro-architectural event counts under *neutral* names (translated into
  ARMv7 PMU events by the platform layer and into gem5 statistics by the
  gem5 layer), and
* a frequency-analytic timing breakdown: core-clock cycles plus an exposure-
  weighted count of DRAM-latency events, so execution time at any DVFS
  operating point is derived without re-simulation (event counts on real
  hardware are frequency-invariant in the same way).

Wrong-path modelling is the part the paper's error analysis hinges on: after
every misprediction the front end fetches down the wrong path, probing the
ITLB and L1I with addresses that are frequently cold.  With the buggy gem5
predictor this happens an order of magnitude more often, producing the
walker-cache traffic of the paper's gem5-event Cluster A and the associated
fetch stalls.
"""

from __future__ import annotations

import math
import zlib
from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.machine import MachineConfig
from repro.uarch.branch import IndirectPredictor, ReturnAddressStack, make_predictor
from repro.uarch.cache import SetAssociativeCache, StridePrefetcher
from repro.uarch.tlb import TlbHierarchy
from repro.workloads.trace import (
    CACHE_LINE_BYTES,
    KIND_NAMES,
    PAGE_BYTES,
    BranchClass,
    SyntheticTrace,
)

_LCG_MULT = 1103515245
_LCG_ADD = 12345
_LCG_MASK = 0x7FFFFFFF

_CLS_RANDOM = int(BranchClass.RANDOM)
_CLS_CALL = int(BranchClass.CALL)
_CLS_RETURN = int(BranchClass.RETURN)

#: Shadow (architectural) call-stack depth backing the RAS check.
_SHADOW_STACK_DEPTH = 64


@dataclass
class SimResult:
    """Outcome of simulating one trace on one machine (one core's work).

    Attributes:
        machine: The machine configuration simulated.
        trace_name: Workload name.
        threads: Thread count of the workload; counts are per core, and
            :meth:`time_seconds` applies the synchronisation slowdown.
        counts: Neutral event counts for one pass over the trace.
        core_cycles: Cycles accrued in the core clock domain.
        dram_stall_weight: Exposure-weighted DRAM-latency event count; the
            DRAM contribution to execution time is
            ``dram_stall_weight * dram_latency_ns`` at any frequency.
        components: Named core-cycle contributions (base, branch, icache,
            itlb, dcache, dtlb, sync, ...), for error attribution.
    """

    machine: MachineConfig
    trace_name: str
    threads: int
    counts: dict[str, float]
    core_cycles: float
    dram_stall_weight: float
    components: dict[str, float] = field(default_factory=dict)

    @property
    def sync_factor(self) -> float:
        """Multiplicative execution-time overhead of running multi-threaded."""
        return 1.0 + self.machine.sync_slowdown_per_thread * (self.threads - 1)

    def time_seconds(self, freq_hz: float) -> float:
        """Execution time of one trace pass at the given core frequency."""
        if freq_hz <= 0:
            raise ValueError("frequency must be positive")
        dram_seconds = self.dram_stall_weight * self.machine.dram_latency_ns * 1e-9
        return (self.core_cycles / freq_hz + dram_seconds) * self.sync_factor

    def cycles(self, freq_hz: float) -> float:
        """Active CPU cycles at the given frequency (PMU event 0x11)."""
        return self.time_seconds(freq_hz) * freq_hz

    def cpi(self, freq_hz: float) -> float:
        """Cycles per committed instruction at the given frequency."""
        instructions = self.counts.get("instructions", 0.0)
        return self.cycles(freq_hz) / instructions if instructions else 0.0

    def branch_predictor_accuracy(self) -> float:
        """Fraction of dynamic branches predicted correctly."""
        branches = self.counts.get("branches", 0.0)
        if not branches:
            return 1.0
        return 1.0 - self.counts.get("branch_mispredicts", 0.0) / branches

    def integrity_problems(self) -> list[str]:
        """Scan every numeric field for NaN/overflow/negative values.

        Every counter and weight a replay produces is a finite non-negative
        number by construction, so any violation means a vectorized pass
        (or a poisoned memo feeding one) leaked garbage into the
        accounting.  The guard layer (:mod:`repro.sim.guard`) rejects such
        results and falls back to the scalar engine.  Returns
        human-readable violations; an empty list means the result is sound.
        """
        problems: list[str] = []

        def check(label: str, value) -> None:
            if not isinstance(value, (int, float)):
                return
            value = float(value)
            if math.isnan(value):
                problems.append(f"{label} is NaN")
            elif math.isinf(value):
                problems.append(f"{label} is infinite")
            elif value < 0.0:
                problems.append(f"{label} is negative ({value!r})")

        check("core_cycles", self.core_cycles)
        check("dram_stall_weight", self.dram_stall_weight)
        for key in sorted(self.counts):
            check(f"counts[{key}]", self.counts[key])
        for key in sorted(self.components):
            check(f"components[{key}]", self.components[key])
        return problems


@dataclass
class _SimState:
    """All mutable micro-architectural state for one simulation pass.

    Building predictor tables and cache/TLB set lists dominates the cost
    of short runs; :class:`CpuSimulator` allocates one bundle and
    :meth:`reset` restores it to the exact cold-construction state between
    runs, so sweeps don't pay the allocation per run.  The golden and
    reuse tests assert reset-and-reuse is bit-identical to cold start.
    """

    machine: MachineConfig
    l1i: SetAssociativeCache
    l1d: SetAssociativeCache
    l2: SetAssociativeCache
    l2_prefetcher: StridePrefetcher
    tlb: TlbHierarchy
    predictor: object
    ras: ReturnAddressStack
    shadow_stack: deque
    indirect: IndirectPredictor

    def reset(self) -> None:
        self.l1i.reset()
        self.l1d.reset()
        self.l2.reset()
        self.l2_prefetcher.reset()
        self.tlb.reset()
        self.predictor.reset()
        self.ras.reset()
        self.shadow_stack.clear()
        self.indirect.reset()


def _make_state(machine: MachineConfig) -> _SimState:
    l1i = SetAssociativeCache(
        "l1i", machine.l1i.size_bytes, machine.l1i.line_bytes, machine.l1i.assoc
    )
    l1d = SetAssociativeCache(
        "l1d",
        machine.l1d.size_bytes,
        machine.l1d.line_bytes,
        machine.l1d.assoc,
        write_streaming=machine.l1d.write_streaming,
    )
    l2 = SetAssociativeCache(
        "l2", machine.l2.size_bytes, machine.l2.line_bytes, machine.l2.assoc
    )
    return _SimState(
        machine=machine,
        l1i=l1i,
        l1d=l1d,
        l2=l2,
        l2_prefetcher=StridePrefetcher(l2, machine.l2.prefetch_degree),
        tlb=TlbHierarchy(machine.tlb),
        predictor=make_predictor(
            machine.predictor,
            machine.predictor_table_bits,
            machine.predictor_history_bits,
        ),
        ras=ReturnAddressStack(),
        shadow_stack=deque(maxlen=_SHADOW_STACK_DEPTH),
        indirect=IndirectPredictor(),
    )


#: Engine names accepted by :func:`simulate` / :class:`CpuSimulator`.
ENGINES = ("auto", "columnar", "scalar")


class CpuSimulator:
    """Reusable simulator bound to one machine configuration.

    Allocates the micro-architectural state once and resets it between
    runs, and (with the default columnar engine) shares each trace's
    decoded columnar form through the trace-level memo — so sweeping one
    trace over many configurations or many traces over one configuration
    pays neither repeated decode nor repeated allocation.
    """

    def __init__(self, machine: MachineConfig, engine: str = "auto"):
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.machine = machine
        self.engine = engine
        self._state: _SimState | None = None

    def run(self, trace: SyntheticTrace) -> SimResult:
        """Simulate one trace pass, reusing state across calls."""
        if self._state is None:
            self._state = _make_state(self.machine)
        else:
            self._state.reset()
        return _dispatch(trace, self.machine, self.engine, self._state)


@dataclass(frozen=True)
class DvfsPointResult:
    """One DVFS operating point of a decode-once sweep."""

    freq_hz: float
    result: SimResult
    time_seconds: float
    cycles: float


def simulate_dvfs_sweep(
    trace: SyntheticTrace,
    machine: MachineConfig,
    freqs_hz: Sequence[float] | None = None,
    engine: str = "auto",
) -> list[DvfsPointResult]:
    """Replay one trace at every DVFS operating point of ``machine``.

    The trace is decoded once; each point replays through one reused
    :class:`CpuSimulator`, so after the first replay the columnar engine's
    verified memos make the remaining points nearly free (the event counts
    are frequency-invariant; only the timing projection changes).  With no
    explicit ``freqs_hz``, the paper's Experiment-1 sweep frequencies for
    the machine's core are used.
    """
    if freqs_hz is None:
        from repro.sim.dvfs import experiment_frequencies

        freqs_hz = experiment_frequencies(machine.core)
    sim = CpuSimulator(machine, engine=engine)
    points = []
    for freq_hz in freqs_hz:
        result = sim.run(trace)
        points.append(
            DvfsPointResult(
                freq_hz=float(freq_hz),
                result=result,
                time_seconds=result.time_seconds(freq_hz),
                cycles=result.cycles(freq_hz),
            )
        )
    return points


def simulate(
    trace: SyntheticTrace,
    machine: MachineConfig,
    engine: str = "auto",
    tracer: Tracer = NULL_TRACER,
) -> SimResult:
    """Simulate ``trace`` on ``machine``; see :class:`SimResult`.

    ``engine`` selects the replay implementation: ``"columnar"`` (the
    vectorized engine), ``"scalar"`` (the per-block reference loop), or
    ``"auto"`` (columnar).  Both engines produce bit-identical results;
    the golden and randomized equivalence suites enforce it.  ``tracer``
    (columnar engine only) records per-pass spans and the deterministic
    replay-profile attribution; results never depend on it.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    return _dispatch(trace, machine, engine, None, tracer)


def _dispatch(
    trace: SyntheticTrace,
    machine: MachineConfig,
    engine: str,
    state: _SimState | None,
    tracer: Tracer = NULL_TRACER,
) -> SimResult:
    if engine == "scalar":
        return _simulate(trace, machine, state)
    from repro.sim.columnar import simulate_columnar

    return simulate_columnar(trace, machine, state, tracer)


def _simulate(
    trace: SyntheticTrace, machine: MachineConfig, state: _SimState | None = None
) -> SimResult:
    if state is None:
        state = _make_state(machine)
    l1i = state.l1i
    l1d = state.l1d
    l2 = state.l2
    l2_prefetcher = state.l2_prefetcher
    tlb = state.tlb
    predictor = state.predictor
    ras = state.ras
    shadow_stack = state.shadow_stack
    indirect = state.indirect

    _prewarm(trace, l1i, l1d, l2, tlb)

    # --- local bindings for the hot loop -------------------------------------
    # The per-block replay tables (flat parallel lists, no dataclass
    # attribute access per dynamic block) are machine-independent and
    # memoised on the trace: every trace is simulated on at least two
    # machines, so the flattening cost is paid once.
    blocks = trace.blocks
    tables = trace.replay_tables()
    block_seq = tables.block_seq
    taken_seq = tables.taken_seq
    target_seq = tables.target_seq
    mem_lines = tables.mem_lines
    mem_pages = tables.mem_pages
    block_pages = tables.block_pages
    block_lines = tables.block_lines
    page_tails = tables.page_tails
    line_tails = tables.line_tails
    block_last_page = tables.block_last_page
    block_last_line = tables.block_last_line
    block_addr = tables.block_addr
    block_class = tables.block_class
    block_backward = tables.block_backward
    block_n_mem = tables.block_n_mem
    wp_near_page = tables.wp_near_page
    mem_write_per_block = tables.mem_write_per_block
    code_pages = tables.code_pages
    n_code_pages = len(code_pages)

    # Bound-method hoists: attribute resolution out of the hot loop.
    translate_inst = tlb.translate_inst
    translate_data = tlb.translate_data
    probe_inst = tlb.probe_inst
    l2_itlb_lookup = tlb.l2_itlb.lookup
    l1i_access = l1i.access
    l1d_access = l1d.access
    l2_access = l2.access
    prefetch_train = l2_prefetcher.train
    predictor_predict = predictor.predict
    predictor_update = predictor.update
    ras_push = ras.push
    ras_pop = ras.pop
    ras_corrupt = ras.corrupt
    shadow_push = shadow_stack.append
    shadow_pop = shadow_stack.pop
    indirect_predict = indirect.predict_and_update

    # Deterministic LCG for the model's stochastic decisions (wrong-path
    # targets, RAS/indirect pollution); seeded per (trace, machine).
    lcg = (trace.seed ^ (zlib.crc32(machine.name.encode()) & _LCG_MASK)) or 1

    # Counters.
    branch_mispredicts = 0
    cond_branches = 0
    cond_mispredicts = 0
    returns = 0
    calls = 0
    indirect_branches = 0
    indirect_mispredicts = 0
    wrongpath_instructions = 0
    itlb_wrongpath_misses = 0
    l1i_fetch_accesses = 0
    dram_reads = 0.0
    dram_writes = 0.0

    # Timing accumulators (core cycles) and DRAM exposure weight.
    stall_branch = 0.0
    stall_icache = 0.0
    stall_itlb = 0.0
    stall_dcache = 0.0
    stall_dtlb = 0.0
    dram_weight = 0.0

    l2_lat = machine.l2.latency
    l2tlb_lat = machine.tlb.l2_latency
    walk_cycles = machine.tlb.walk_cycles
    mem_overlap = machine.mem_overlap
    store_exposure = machine.store_miss_exposure
    dram_exposure = 1.0 - machine.dram_overlap
    mispredict_penalty = machine.mispredict_penalty
    wrongpath_fetch = machine.wrongpath_fetch
    far_fraction = machine.wrongpath_far_fraction
    ras_corruption = machine.ras_corruption
    indirect_corruption = machine.indirect_corruption
    lines_per_page = PAGE_BYTES // CACHE_LINE_BYTES

    pending_indirect_corrupt = False
    last_ipage = -1
    last_iline = -1
    mem_cursor = 0

    for block_id, taken_raw, target in zip(block_seq, taken_seq, target_seq):
        # ---------------- instruction side ----------------
        pages = block_pages[block_id]
        if pages[0] == last_ipage:
            pages = page_tails[block_id]
        last_ipage = block_last_page[block_id]
        for page in pages:
            result = translate_inst(page)
            if not result.l1_hit:
                stall_itlb += l2tlb_lat
                if result.walked:
                    stall_itlb += walk_cycles
                    hit, _, _ = l2_access(page * lines_per_page)
                    if not hit:
                        dram_reads += 1
                        dram_weight += 0.5
        lines = block_lines[block_id]
        if lines[0] == last_iline:
            lines = line_tails[block_id]
        last_iline = block_last_line[block_id]
        for line in lines:
            l1i_fetch_accesses += 1
            hit, _, _ = l1i_access(line)
            if not hit:
                stall_icache += l2_lat * 0.8
                l2_hit, wrote_back, _ = l2_access(line)
                if wrote_back:
                    dram_writes += 1
                if not l2_hit:
                    dram_reads += 1
                    dram_weight += 0.9
                    prefetch_train(line)

        # ---------------- data side ----------------
        n_mem = block_n_mem[block_id]
        if n_mem:
            writes = mem_write_per_block[block_id]
            for slot_index in range(n_mem):
                is_write = writes[slot_index]
                line = mem_lines[mem_cursor]
                page = mem_pages[mem_cursor]
                mem_cursor += 1

                result = translate_data(page)
                if not result.l1_hit:
                    stall_dtlb += l2tlb_lat * (1.0 - mem_overlap)
                    if result.walked:
                        stall_dtlb += walk_cycles * (1.0 - 0.5 * mem_overlap)
                        hit, _, _ = l2_access(page * lines_per_page)
                        if not hit:
                            dram_reads += 1
                            dram_weight += 0.4

                hit, wrote_back, allocated = l1d_access(line, is_write)
                if wrote_back:
                    # L1D dirty victim written back into the L2.
                    l2_hit, l2_wb, _ = l2_access(line ^ 0x1, True)
                    if l2_wb:
                        dram_writes += 1
                if not hit:
                    if not allocated and is_write:
                        # Streaming store: write around L1D straight to L2.
                        # Cheaper than a write-allocate round trip, but the
                        # store stream still consumes L2/DRAM write
                        # bandwidth.
                        stall_dcache += l2_lat * 0.05
                        l2_hit, l2_wb, _ = l2_access(line, True)
                        if l2_wb:
                            dram_writes += 1
                        if not l2_hit:
                            dram_writes += 1
                            dram_weight += 0.12
                        continue
                    if is_write:
                        stall_dcache += l2_lat * store_exposure
                    else:
                        stall_dcache += l2_lat * (1.0 - mem_overlap)
                    l2_hit, l2_wb, _ = l2_access(line, is_write)
                    if l2_wb:
                        dram_writes += 1
                    if not l2_hit:
                        dram_reads += 1
                        dram_weight += (
                            store_exposure * 0.5 if is_write else dram_exposure
                        )
                        prefetch_train(line)

        # ---------------- branch at block end ----------------
        branch_class = block_class[block_id]
        mispredicted = False
        if branch_class <= _CLS_RANDOM:  # conditional classes
            cond_branches += 1
            taken = bool(taken_raw)
            pc = block_addr[block_id]
            backward = block_backward[block_id]
            prediction = predictor_predict(pc, backward)
            predictor_update(pc, taken, backward)
            if prediction != taken:
                cond_mispredicts += 1
                mispredicted = True
        elif branch_class == _CLS_CALL:
            calls += 1
            addr = block_addr[block_id]
            ras_push(addr)
            # The deque's maxlen discards the deepest frame once the shadow
            # stack exceeds the modelled depth, in O(1).
            shadow_push(addr)
        elif branch_class == _CLS_RETURN:
            returns += 1
            expected = shadow_pop() if shadow_stack else -1
            if not ras_pop(expected):
                mispredicted = True
        else:  # INDIRECT
            indirect_branches += 1
            correct = indirect_predict(block_addr[block_id], target)
            if pending_indirect_corrupt:
                correct = False
                pending_indirect_corrupt = False
            if not correct:
                indirect_mispredicts += 1
                mispredicted = True

        if mispredicted:
            branch_mispredicts += 1
            stall_branch += mispredict_penalty
            wrongpath_instructions += wrongpath_fetch

            # Wrong-path fetch: pick a target page and probe the front end.
            lcg = (lcg * _LCG_MULT + _LCG_ADD) & _LCG_MASK
            uniform = lcg / _LCG_MASK
            if uniform < far_fraction and n_code_pages > 1:
                lcg = (lcg * _LCG_MULT + _LCG_ADD) & _LCG_MASK
                wp_page = code_pages[lcg % n_code_pages] + 1 + (lcg % 7)
            else:
                wp_page = wp_near_page[block_id]

            if not probe_inst(wp_page):
                # Squashed translation: walker/L2-TLB traffic, no L1 fill.
                itlb_wrongpath_misses += 1
                wp_l2_hit = l2_itlb_lookup(wp_page)
                stall_itlb += l2tlb_lat
                if not wp_l2_hit:
                    stall_itlb += walk_cycles * 0.5
            wp_line = wp_page * lines_per_page + (lcg % 8)
            l1i_fetch_accesses += 1
            wp_hit, _, _ = l1i_access(wp_line)
            if not wp_hit:
                l2_hit, _, _ = l2_access(wp_line)
                if not l2_hit:
                    dram_reads += 1

            lcg = (lcg * _LCG_MULT + _LCG_ADD) & _LCG_MASK
            if lcg / _LCG_MASK < ras_corruption:
                ras_corrupt()
            lcg = (lcg * _LCG_MULT + _LCG_ADD) & _LCG_MASK
            if lcg / _LCG_MASK < indirect_corruption:
                pending_indirect_corrupt = True

    return _finalise(
        trace,
        machine,
        l1i_stats=l1i.stats,
        l1d_stats=l1d.stats,
        l2_stats=l2.stats,
        itlb_stats=tlb.itlb.stats,
        dtlb_stats=tlb.dtlb.stats,
        l2_itlb_stats=tlb.l2_itlb.stats,
        l2_dtlb_stats=tlb.l2_dtlb.stats,
        walks_inst=tlb.walks_inst,
        walks_data=tlb.walks_data,
        ras_incorrect=ras.incorrect,
        branch_mispredicts=branch_mispredicts,
        cond_branches=cond_branches,
        cond_mispredicts=cond_mispredicts,
        returns=returns,
        calls=calls,
        indirect_branches=indirect_branches,
        indirect_mispredicts=indirect_mispredicts,
        wrongpath_instructions=wrongpath_instructions,
        itlb_wrongpath_misses=itlb_wrongpath_misses,
        l1i_fetch_accesses=l1i_fetch_accesses,
        dram_reads=dram_reads,
        dram_writes=dram_writes,
        stalls={
            "branch": stall_branch,
            "icache": stall_icache,
            "itlb": stall_itlb,
            "dcache": stall_dcache,
            "dtlb": stall_dtlb,
        },
        dram_weight=dram_weight,
    )


def _prewarm(
    trace: SyntheticTrace,
    l1i: SetAssociativeCache,
    l1d: SetAssociativeCache,
    l2: SetAssociativeCache,
    tlb: TlbHierarchy,
) -> None:
    """Establish steady-state cache/TLB residency before measurement.

    The traces are short relative to the multi-second runs they represent;
    without pre-warming, cold misses on large footprints would swamp the
    steady-state behaviour the paper measures over >=30 s windows.  Code
    lines/pages and a capacity-bounded, evenly-sampled subset of each data
    stream's lines/pages are inserted silently (no counters).
    """
    line_bytes = CACHE_LINE_BYTES

    # Instruction side: hot code is L2-resident; the L1I and the TLBs keep
    # whatever fits (LRU retains the most recently inserted).  Each
    # structure receives its fill sequence in one bulk call; on a unified
    # L2 TLB the instruction-side fills land first, exactly as the
    # per-page loop ordered them.
    tables = trace.replay_tables()
    code_lines = tables.code_lines
    code_pages = tables.code_pages
    l2.warm_fill_many(code_lines)
    l1i.warm_fill_many(code_lines)
    tlb.l2_itlb.fill_many(code_pages)
    tlb.itlb.fill_many(code_pages)

    # Data side: streams that fit in the L2 are warmed completely (they are
    # L2-resident in steady state); oversized streams get an evenly-sampled
    # subset so pathological spans cannot make pre-warming slower than
    # simulation itself.  Per-stream footprints are generated as arange
    # ramps and concatenated so each cache/TLB again sees a single bulk
    # fill in the original stream order.
    l2_warm, l1d_warm, data_pages = _data_warm_arrays(trace, l2.size_bytes)
    if l2_warm is not None:
        l2.warm_fill_many(l2_warm)
        l1d.warm_fill_many(l1d_warm)
        tlb.l2_dtlb.fill_many(data_pages)
        tlb.dtlb.fill_many(data_pages)


def _data_warm_arrays(trace: SyntheticTrace, l2_size_bytes: int):
    """Data-side warm sequences shared by both engines.

    Returns ``(l2_warm, l1d_warm, data_pages)`` line/page arrays in the
    original stream order (every fourth warmed line — offset
    ``% (step * 4) == 0`` — also lands in the L1D), or ``(None, None,
    None)`` for a trace without data streams.
    """
    line_bytes = CACHE_LINE_BYTES
    l2_capacity_lines = l2_size_bytes // line_bytes
    warm_budget = 2 * l2_capacity_lines
    l2_warm: list[np.ndarray] = []
    l1d_warm: list[np.ndarray] = []
    page_warm: list[np.ndarray] = []
    for stream in trace.streams:
        span_lines = max(1, stream.span // line_bytes)
        if span_lines <= l2_capacity_lines and span_lines <= warm_budget:
            step = 1
        else:
            step = max(1, span_lines // max(min(warm_budget, l2_capacity_lines), 1))
        warm_budget = max(warm_budget - span_lines // step, 256)
        base_line = stream.base // line_bytes
        l2_warm.append(base_line + np.arange(0, span_lines, step, dtype=np.int64))
        l1d_warm.append(base_line + np.arange(0, span_lines, step * 4, dtype=np.int64))
        span_pages = max(1, stream.span // PAGE_BYTES)
        page_step = max(1, span_pages // 1024)
        base_page = stream.base // PAGE_BYTES
        page_warm.append(base_page + np.arange(0, span_pages, page_step, dtype=np.int64))
    if not l2_warm:
        return None, None, None
    return (
        np.concatenate(l2_warm),
        np.concatenate(l1d_warm),
        np.concatenate(page_warm),
    )


def _finalise(
    trace: SyntheticTrace,
    machine: MachineConfig,
    *,
    l1i_stats,
    l1d_stats,
    l2_stats,
    itlb_stats,
    dtlb_stats,
    l2_itlb_stats,
    l2_dtlb_stats,
    walks_inst: int,
    walks_data: int,
    ras_incorrect: int,
    branch_mispredicts: int,
    cond_branches: int,
    cond_mispredicts: int,
    returns: int,
    calls: int,
    indirect_branches: int,
    indirect_mispredicts: int,
    wrongpath_instructions: int,
    itlb_wrongpath_misses: int,
    l1i_fetch_accesses: int,
    dram_reads: float,
    dram_writes: float,
    stalls: dict[str, float],
    dram_weight: float,
) -> SimResult:
    totals = trace.totals
    n_instrs = trace.n_instrs
    profile = trace.profile

    # Static unaligned slots weighted by block execution counts: a single
    # integer dot product of the per-block unaligned-slot counts against the
    # np.bincount occurrence vector.
    occurrences = trace.block_occurrences()
    unaligned_per_block = np.fromiter(
        (sum(slot.unaligned for slot in block.mem_slots) for block in trace.blocks),
        dtype=np.int64,
        count=len(trace.blocks),
    )
    unaligned = int(unaligned_per_block @ occurrences)

    # Base pipeline cycles.
    effective_width = min(float(machine.issue_width), profile.ilp)
    if not machine.out_of_order:
        effective_width *= machine.inorder_efficiency
    base_cycles = n_instrs / max(effective_width, 0.1)

    op_stalls = (
        totals["div"] * machine.div_penalty
        + totals["mul"] * machine.mul_penalty
        + totals["fp"] * machine.fp_penalty
        + totals["simd"] * machine.simd_penalty
    )
    sync_stalls = (
        totals["barrier"] * machine.barrier_cycles
        + totals["ldrex"] * machine.ldrex_cycles
        + totals["strex"] * machine.strex_cycles
    )
    load_use = (
        totals["load"] * max(machine.l1d.latency - 1, 0) * machine.load_use_exposure
    )
    misc_stalls = unaligned * machine.unaligned_penalty

    components = {
        "base": base_cycles,
        "ops": op_stalls,
        "load_use": load_use,
        "sync": sync_stalls,
        "misc": misc_stalls,
        **stalls,
    }
    core_cycles = sum(components.values())

    branches = int(trace.n_branches)
    spec_inflation = 1.0 + 0.6 * wrongpath_instructions / max(n_instrs, 1)

    counts: dict[str, float] = {
        "instructions": float(n_instrs),
        "branches": float(branches),
        "cond_branches": float(cond_branches),
        "branch_mispredicts": float(branch_mispredicts),
        "cond_mispredicts": float(cond_mispredicts),
        "returns": float(returns),
        "calls": float(calls),
        "indirect_branches": float(indirect_branches),
        "indirect_mispredicts": float(indirect_mispredicts),
        "ras_incorrect": float(ras_incorrect),
        "spec_instructions": float(n_instrs) * spec_inflation,
        "wrongpath_instructions": float(wrongpath_instructions),
        "unaligned_accesses": float(unaligned),
        # Instruction side.
        "l1i_fetch_accesses": float(l1i_fetch_accesses),
        "l1i_instr_accesses": float(n_instrs + wrongpath_instructions),
        "l1i_misses": float(l1i_stats.read_misses),
        "itlb_lookups": float(itlb_stats.lookups),
        "itlb_misses": float(itlb_stats.misses),
        "itlb_wrongpath_misses": float(itlb_wrongpath_misses),
        "l2tlb_i_accesses": float(l2_itlb_stats.lookups),
        "l2tlb_i_hits": float(l2_itlb_stats.hits),
        "l2tlb_i_misses": float(l2_itlb_stats.misses),
        "itlb_walks": float(walks_inst),
        # Data side.
        "dtlb_lookups": float(dtlb_stats.lookups),
        "dtlb_misses": float(dtlb_stats.misses),
        "l2tlb_d_accesses": float(l2_dtlb_stats.lookups),
        "l2tlb_d_misses": float(l2_dtlb_stats.misses),
        "dtlb_walks": float(walks_data),
        "l1d_rd_accesses": float(l1d_stats.read_accesses),
        "l1d_wr_accesses": float(l1d_stats.write_accesses),
        "l1d_rd_misses": float(l1d_stats.read_misses),
        "l1d_wr_misses": float(l1d_stats.write_misses),
        "l1d_wr_refills": float(l1d_stats.write_refills),
        "l1d_writebacks": float(l1d_stats.writebacks),
        "l1d_streaming_stores": float(l1d_stats.streaming_stores),
        # Shared L2 and memory.
        "l2_rd_accesses": float(l2_stats.read_accesses),
        "l2_wr_accesses": float(l2_stats.write_accesses),
        "l2_rd_misses": float(l2_stats.read_misses),
        "l2_wr_misses": float(l2_stats.write_misses),
        "l2_writebacks": float(l2_stats.writebacks),
        "l2_prefetches": float(l2_stats.prefetches_issued),
        "dram_reads": float(dram_reads),
        "dram_writes": float(dram_writes),
    }
    for kind in KIND_NAMES:
        counts[f"inst_{kind}"] = float(totals[kind])

    return SimResult(
        machine=machine,
        trace_name=trace.name,
        threads=profile.threads,
        counts=counts,
        core_cycles=core_cycles,
        dram_stall_weight=dram_weight,
        components=components,
    )
