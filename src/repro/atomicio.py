"""The shared atomic-write helper: tmp file + fsync + rename.

Every artifact the pipeline persists — simulation-result cache entries,
power-model JSON exports, run-state checkpoints — must survive a crash
mid-write: a reader must only ever observe the complete old bytes or the
complete new bytes, never a truncated mixture.  The sanctioned pattern is
exactly one: write to a same-directory temporary file, flush, ``fsync``,
then ``os.replace`` over the destination (atomic on POSIX).

Writing an artifact with a plain ``open(path, "w")`` in :mod:`repro.sim`
or :mod:`repro.core` is a lint error (rule ``ROB002``); route the write
through :func:`atomic_write_bytes` / :func:`atomic_write_text` instead.
Append-only journals (mode ``"a"``) are the one other sanctioned pattern:
a torn tail line is detected and dropped by their checksummed readers.
"""

from __future__ import annotations

import contextlib
import os


def atomic_write_bytes(path: str, data: bytes, fsync: bool = True) -> None:
    """Atomically replace ``path`` with ``data``.

    The temporary file lives next to the destination (same filesystem, so
    the rename is atomic) and is named per-pid so concurrent writers never
    collide on it.  On any OSError the temporary file is removed and the
    error re-raised; the destination is never left half-written.

    Raises:
        OSError: If the directory is unwritable or the filesystem is full.
    """
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except OSError:
        with contextlib.suppress(OSError):
            os.remove(tmp_path)
        raise


def atomic_write_text(path: str, text: str, fsync: bool = True) -> None:
    """Atomically replace ``path`` with UTF-8 encoded ``text``.

    Raises:
        OSError: If the directory is unwritable or the filesystem is full.
    """
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)
