"""A McPAT-style analytical power model baseline.

McPAT [2] estimates power from technology parameters and generic unit
capacitance models rather than from measurements of the actual silicon.
The literature the paper builds on ([3], [6], [11]) finds such analytical
models carry 20-30 % errors against hardware — Butko et al. report a 25 %
energy MAPE from gem5+McPAT on the same board.

This baseline reproduces that model *class*: per-unit energy coefficients
derived from generic area/capacitance scaling (not fitted to the measured
power), a fixed technology node, and analytic V^2 f scaling.  It exists so
the repository can demonstrate the paper's core claim — empirical PMC
models beat analytical ones on accuracy — with a concrete comparator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class UnitEnergies:
    """Generic per-event energies (joules at 1 V), from capacitance scaling.

    These deliberately do NOT match the silicon's true coefficients; they
    are "datasheet physics" numbers of the kind McPAT derives from its
    internal area models.
    """

    per_cycle: float
    per_instruction: float
    per_l1_access: float
    per_l2_access: float
    per_dram_access: float
    per_fp_op: float
    leakage_w_per_v: float


_GENERIC = {
    # A generic 3-wide OoO core at 28 nm, per McPAT-style scaling: the core
    # energy is over-estimated and the memory-side energy under-estimated,
    # the signature error structure reported for McPAT in [3].
    "A15": UnitEnergies(
        per_cycle=0.42e-9,
        per_instruction=0.25e-9,
        per_l1_access=0.15e-9,
        per_l2_access=0.55e-9,
        per_dram_access=0.9e-9,
        per_fp_op=0.6e-9,
        leakage_w_per_v=0.35,
    ),
    "A7": UnitEnergies(
        per_cycle=0.10e-9,
        per_instruction=0.08e-9,
        per_l1_access=0.045e-9,
        per_l2_access=0.16e-9,
        per_dram_access=0.35e-9,
        per_fp_op=0.18e-9,
        leakage_w_per_v=0.09,
    ),
}


class McPatLikeModel:
    """Analytical cluster power from activity rates and V/f, unfitted."""

    def __init__(self, core: str):
        if core not in _GENERIC:
            raise ValueError(f"unknown core {core!r}; expected 'A7' or 'A15'")
        self.core = core
        self.units = _GENERIC[core]

    def estimate(
        self,
        rates: Mapping[str, float],
        voltage: float,
        freq_hz: float,
        active_cores: int = 1,
    ) -> float:
        """Cluster power in watts from neutral activity rates.

        Args:
            rates: Per-second rates with keys ``cycles``, ``instructions``,
                ``l1_accesses``, ``l2_accesses``, ``dram_accesses``,
                ``fp_ops`` (missing keys default to zero).
            voltage: Supply voltage.
            freq_hz: Clock frequency (idle-core clock tree load).
            active_cores: Cores running the workload (1-4).
        """
        if not 1 <= active_cores <= 4:
            raise ValueError("active_cores must be in [1, 4]")
        units = self.units
        get = rates.get
        dynamic = (
            units.per_cycle * get("cycles", freq_hz)
            + units.per_instruction * get("instructions", 0.0)
            + units.per_l1_access * get("l1_accesses", 0.0)
            + units.per_fp_op * get("fp_ops", 0.0)
        ) * active_cores
        dynamic += units.per_l2_access * get("l2_accesses", 0.0) * active_cores
        dynamic += units.per_dram_access * get("dram_accesses", 0.0) * active_cores
        dynamic += units.per_cycle * freq_hz * 0.08 * (4 - active_cores)
        return voltage**2 * dynamic + units.leakage_w_per_v * voltage

    @staticmethod
    def rates_from_counts(
        counts: Mapping[str, float], time_seconds: float, cycles: float
    ) -> dict[str, float]:
        """Adapt neutral simulator counts to this model's rate names."""
        if time_seconds <= 0:
            raise ValueError("time_seconds must be positive")

        def rate(key: str) -> float:
            return counts.get(key, 0.0) / time_seconds

        return {
            "cycles": cycles / time_seconds,
            "instructions": rate("instructions"),
            "l1_accesses": rate("l1d_rd_accesses")
            + rate("l1d_wr_accesses")
            + rate("l1i_fetch_accesses"),
            "l2_accesses": rate("l2_rd_accesses") + rate("l2_wr_accesses"),
            "dram_accesses": rate("dram_reads") + rate("dram_writes"),
            "fp_ops": rate("inst_fp") + rate("inst_simd"),
        }
