"""Baseline power models GemStone's empirical models are compared against."""

from repro.power_baselines.mcpat_like import McPatLikeModel

__all__ = ["McPatLikeModel"]
