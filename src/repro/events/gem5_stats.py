"""The gem5 statistics namespace.

gem5 emits thousands of named statistics per simulation (``stats.txt``).  The
paper's Section IV-C clusters these statistics against the execution-time
error, so the reproduction needs a faithful namespace: stat names grouped by
the emitting component (``itb``, ``itb_walker_cache``, ``branchPred``,
``fetch``, ``iew``, ``commit``, ``icache``, ``dcache``, ``l2``, ``dtb``, ...).

:class:`Gem5StatCatalog` enumerates the stats our :class:`~repro.sim.gem5.
Gem5Simulation` produces, resolves short names to fully-qualified ones, and
identifies the component group of any stat — the grouping is what lets the
analysis say "the vast majority of Cluster A events were related to the ITLB".
"""

from __future__ import annotations

from dataclasses import dataclass

#: Component groups and the statistics each emits.  Names are relative to the
#: component prefix; fully-qualified names look like
#: ``system.cpu.itb_walker_cache.ReadReq_hits``.
GEM5_STAT_GROUPS: dict[str, tuple[str, ...]] = {
    "itb": (
        "accesses",
        "hits",
        "misses",
        "flush_entries",
        "inst_accesses",
        "inst_hits",
        "inst_misses",
    ),
    "itb_walker_cache": (
        "ReadReq_accesses",
        "ReadReq_hits",
        "ReadReq_misses",
        "ReadReq_miss_latency",
        "overall_accesses",
        "overall_hits",
        "overall_misses",
        "overall_miss_rate",
        "tags.data_accesses",
    ),
    "dtb": (
        "accesses",
        "hits",
        "misses",
        "read_accesses",
        "read_hits",
        "read_misses",
        "write_accesses",
        "write_hits",
        "write_misses",
        "prefetch_faults",
    ),
    "dtb_walker_cache": (
        "ReadReq_accesses",
        "ReadReq_hits",
        "ReadReq_misses",
        "overall_accesses",
        "overall_misses",
    ),
    "branchPred": (
        "lookups",
        "condPredicted",
        "condIncorrect",
        "BTBLookups",
        "BTBHits",
        "RASUsed",
        "usedRAS",
        "RASInCorrect",
        "indirectLookups",
        "indirectHits",
        "indirectMisses",
        "indirectMispredicted",
    ),
    "fetch": (
        "Insts",
        "Branches",
        "predictedBranches",
        "Cycles",
        "SquashCycles",
        "TlbCycles",
        "TlbSquashes",
        "BlockedCycles",
        "MiscStallCycles",
        "PendingTrapStallCycles",
        "IcacheStallCycles",
        "IcacheWaitRetryStallCycles",
        "CacheLines",
        "rate",
    ),
    "decode": (
        "IdleCycles",
        "BlockedCycles",
        "RunCycles",
        "SquashCycles",
        "DecodedInsts",
        "SquashedInsts",
    ),
    "rename": (
        "SquashCycles",
        "IdleCycles",
        "BlockCycles",
        "RenamedInsts",
        "ROBFullEvents",
        "IQFullEvents",
        "LQFullEvents",
        "SQFullEvents",
    ),
    "iew": (
        "iewExecutedInsts",
        "iewExecLoadInsts",
        "iewExecSquashedInsts",
        "exec_branches",
        "exec_stores",
        "exec_nop",
        "exec_rate",
        "iewIQFullEvents",
        "iewLSQFullEvents",
        "predictedTakenIncorrect",
        "predictedNotTakenIncorrect",
        "branchMispredicts",
        "memOrderViolationEvents",
        "lsqForwLoads",
        "blockCycles",
        "squashCycles",
        "unblockCycles",
    ),
    "commit": (
        "committedInsts",
        "committedOps",
        "branchMispredicts",
        "branches",
        "loads",
        "membars",
        "amos",
        "refs",
        "swp_count",
        "commitNonSpecStalls",
        "commitSquashedInsts",
        "int_insts",
        "fp_insts",
        "vec_insts",
        "function_calls",
        "cyclesWithCommittedInsts",
        "cyclesWithNoCommittedInsts",
    ),
    "icache": (
        "ReadReq_accesses",
        "ReadReq_hits",
        "ReadReq_misses",
        "ReadReq_miss_latency",
        "ReadReq_miss_rate",
        "overall_accesses",
        "overall_hits",
        "overall_misses",
        "overall_miss_latency",
        "overall_miss_rate",
        "overall_mshr_misses",
        "overall_mshr_hits",
        "replacements",
        "tags.data_accesses",
    ),
    "dcache": (
        "ReadReq_accesses",
        "ReadReq_hits",
        "ReadReq_misses",
        "ReadReq_miss_latency",
        "WriteReq_accesses",
        "WriteReq_hits",
        "WriteReq_misses",
        "WriteReq_miss_latency",
        "overall_accesses",
        "overall_hits",
        "overall_misses",
        "overall_miss_rate",
        "overall_mshr_misses",
        "overall_mshr_hits",
        "writebacks",
        "replacements",
        "UncacheableLatency_cpu_data",
        "blocked_cycles_no_mshrs",
    ),
    "l2": (
        "ReadReq_accesses",
        "ReadReq_hits",
        "ReadReq_misses",
        "ReadExReq_accesses",
        "ReadExReq_hits",
        "ReadExReq_misses",
        "ReadSharedReq_accesses",
        "ReadSharedReq_hits",
        "WritebackDirty_accesses",
        "WritebackClean_accesses",
        "overall_accesses",
        "overall_hits",
        "overall_misses",
        "overall_miss_rate",
        "overall_miss_latency",
        "overall_mshr_misses",
        "overall_avg_miss_latency",
        "writebacks",
        "replacements",
        "prefetcher.num_hwpf_issued",
        "prefetcher.pfIssued",
    ),
    "mem_ctrls": (
        "readReqs",
        "writeReqs",
        "totBusLat",
        "avgRdQLen",
        "avgWrQLen",
        "bw_total",
    ),
    "cpu": (
        "numCycles",
        "idleCycles",
        "committedInsts",
        "committedOps",
        "cpi",
        "ipc",
        "int_alu_accesses",
        "fp_alu_accesses",
        "num_mem_refs",
        "num_load_insts",
        "num_store_insts",
        "num_branches_committed",
        "quiesceCycles",
    ),
}

#: Stats whose values are ratios/rates rather than counts.  These are kept as
#: emitted and never divided by time again when rate-normalising.
RATE_LIKE_STATS: frozenset[str] = frozenset(
    {
        "fetch.rate",
        "iew.exec_rate",
        "icache.ReadReq_miss_rate",
        "icache.overall_miss_rate",
        "dcache.overall_miss_rate",
        "l2.overall_miss_rate",
        "l2.overall_avg_miss_latency",
        "itb_walker_cache.overall_miss_rate",
        "mem_ctrls.avgRdQLen",
        "mem_ctrls.avgWrQLen",
        "mem_ctrls.bw_total",
        "cpu.cpi",
        "cpu.ipc",
    }
)

#: Top-level simulation stats that sit outside any component group.
GLOBAL_STATS: tuple[str, ...] = (
    "sim_seconds",
    "sim_ticks",
    "sim_insts",
    "sim_ops",
    "host_seconds",
)


@dataclass(frozen=True)
class Gem5StatCatalog:
    """Enumerates and resolves gem5 stat names for one simulated system.

    Attributes:
        system: The system prefix used in fully-qualified names; gem5's
            default is ``"system"``.
        cpu: The CPU object name, e.g. ``"cpu"`` (``system.cpu.*``).
    """

    system: str = "system"
    cpu: str = "cpu"

    def qualify(self, short_name: str) -> str:
        """Resolve ``"group.stat"`` to a fully-qualified gem5 stat name.

        ``"sim_seconds"``-style global stats are returned unchanged; the
        ``l2`` and ``mem_ctrls`` groups hang off the system, everything else
        off the CPU — mirroring the gem5 object hierarchy.
        """
        if "." not in short_name or short_name in GLOBAL_STATS:
            return short_name
        group = short_name.split(".", 1)[0]
        if group in ("l2", "mem_ctrls"):
            return f"{self.system}.{short_name}"
        return f"{self.system}.{self.cpu}.{short_name}"

    def shorten(self, full_name: str) -> str:
        """Inverse of :meth:`qualify` for names produced by this catalog."""
        for prefix in (f"{self.system}.{self.cpu}.", f"{self.system}."):
            if full_name.startswith(prefix):
                return full_name[len(prefix):]
        return full_name

    def group_of(self, name: str) -> str:
        """The component group of a stat (``"itb_walker_cache"``, ...).

        Accepts either short or fully-qualified names.  Global stats map to
        ``"sim"``.
        """
        short = self.shorten(name)
        if short in GLOBAL_STATS or "." not in short:
            return "sim"
        return short.split(".", 1)[0]

    def all_short_names(self) -> list[str]:
        """Every stat name this catalog defines, in stable order."""
        names: list[str] = list(GLOBAL_STATS)
        for group, stats in GEM5_STAT_GROUPS.items():
            names.extend(f"{group}.{stat}" for stat in stats)
        return names

    def is_rate_like(self, name: str) -> bool:
        """True when the stat is already a ratio and must not be rated again."""
        return self.shorten(name) in RATE_LIKE_STATS
