"""ARMv7 PMU event catalog for the Cortex-A7 and Cortex-A15.

The catalog covers the architectural events (``0x00``-``0x1D``) plus the
Cortex-A15 implementation-defined events (``0x40``-``0x7E``) referenced by the
paper: the 68 events captured in Experiment 1 and the events used by the power
models (Section V) and the error analysis (Section IV).

Event identifiers follow the ARM Architecture Reference Manual and the
Cortex-A15 TRM (r3p3), the same documents the paper cites as [23].  Each event
carries a *category* used by the reporting layer to group correlation-analysis
output the way Fig. 5 does (memory barriers, branches, cache refills, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable


class EventCategory(Enum):
    """Coarse grouping of PMU events, used when narrating analysis output."""

    INSTRUCTION = "instruction"
    CYCLES = "cycles"
    BRANCH = "branch"
    L1I = "l1i_cache"
    L1D = "l1d_cache"
    L2 = "l2_cache"
    ITLB = "itlb"
    DTLB = "dtlb"
    BUS = "bus"
    SYNC = "synchronisation"
    EXCEPTION = "exception"
    UNALIGNED = "unaligned"
    SPECULATION = "speculation"


@dataclass(frozen=True)
class PmuEvent:
    """A single PMU event definition.

    Attributes:
        number: The hardware event number (e.g. ``0x08``).
        mnemonic: The ARM event mnemonic (e.g. ``INST_RETIRED``).
        description: Human-readable description from the TRM.
        category: Coarse category for report grouping.
        cores: Which CPU cores implement the event.  The Cortex-A7 PMU
            implements only a subset of the Cortex-A15 event space.
        speculative: True when the event counts speculatively executed
            operations rather than architecturally retired ones.
    """

    number: int
    mnemonic: str
    description: str
    category: EventCategory
    cores: tuple[str, ...] = ("A7", "A15")
    speculative: bool = False

    @property
    def hex_id(self) -> str:
        """The conventional hexadecimal spelling, e.g. ``"0x08"``."""
        return f"0x{self.number:02X}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.hex_id} {self.mnemonic}"


def _ev(
    number: int,
    mnemonic: str,
    description: str,
    category: EventCategory,
    cores: tuple[str, ...] = ("A7", "A15"),
    speculative: bool = False,
) -> PmuEvent:
    return PmuEvent(number, mnemonic, description, category, cores, speculative)


_A15 = ("A15",)

#: The full event catalog, keyed by event number.
PMU_EVENTS: dict[int, PmuEvent] = {
    e.number: e
    for e in [
        _ev(0x00, "SW_INCR", "Software increment", EventCategory.INSTRUCTION),
        _ev(0x01, "L1I_CACHE_REFILL", "L1 instruction cache refill", EventCategory.L1I),
        _ev(0x02, "L1I_TLB_REFILL", "L1 instruction TLB refill", EventCategory.ITLB),
        _ev(0x03, "L1D_CACHE_REFILL", "L1 data cache refill", EventCategory.L1D),
        _ev(0x04, "L1D_CACHE", "L1 data cache access", EventCategory.L1D),
        _ev(0x05, "L1D_TLB_REFILL", "L1 data TLB refill", EventCategory.DTLB),
        _ev(0x06, "LD_RETIRED", "Load instruction architecturally executed", EventCategory.INSTRUCTION),
        _ev(0x07, "ST_RETIRED", "Store instruction architecturally executed", EventCategory.INSTRUCTION),
        _ev(0x08, "INST_RETIRED", "Instruction architecturally executed", EventCategory.INSTRUCTION),
        _ev(0x09, "EXC_TAKEN", "Exception taken", EventCategory.EXCEPTION),
        _ev(0x0A, "EXC_RETURN", "Exception return", EventCategory.EXCEPTION),
        _ev(0x0B, "CID_WRITE_RETIRED", "Context ID register write", EventCategory.EXCEPTION),
        _ev(0x0C, "PC_WRITE_RETIRED", "Software change of PC", EventCategory.BRANCH),
        _ev(0x0D, "BR_IMMED_RETIRED", "Immediate branch architecturally executed", EventCategory.BRANCH),
        _ev(0x0E, "BR_RETURN_RETIRED", "Procedure return architecturally executed", EventCategory.BRANCH),
        _ev(0x0F, "UNALIGNED_LDST_RETIRED", "Unaligned load or store", EventCategory.UNALIGNED),
        _ev(0x10, "BR_MIS_PRED", "Mispredicted or not predicted branch", EventCategory.BRANCH),
        _ev(0x11, "CPU_CYCLES", "CPU cycle", EventCategory.CYCLES),
        _ev(0x12, "BR_PRED", "Predictable branch speculatively executed", EventCategory.BRANCH),
        _ev(0x13, "MEM_ACCESS", "Data memory access", EventCategory.L1D),
        _ev(0x14, "L1I_CACHE", "L1 instruction cache access", EventCategory.L1I),
        _ev(0x15, "L1D_CACHE_WB", "L1 data cache write-back", EventCategory.L1D),
        _ev(0x16, "L2D_CACHE", "L2 data cache access", EventCategory.L2),
        _ev(0x17, "L2D_CACHE_REFILL", "L2 data cache refill", EventCategory.L2),
        _ev(0x18, "L2D_CACHE_WB", "L2 data cache write-back", EventCategory.L2),
        _ev(0x19, "BUS_ACCESS", "Bus access", EventCategory.BUS),
        _ev(0x1B, "INST_SPEC", "Instruction speculatively executed", EventCategory.SPECULATION, speculative=True),
        _ev(0x1C, "TTBR_WRITE_RETIRED", "TTBR write", EventCategory.EXCEPTION),
        _ev(0x1D, "BUS_CYCLES", "Bus cycle", EventCategory.BUS),
        # Cortex-A15 implementation-defined events.
        _ev(0x40, "L1D_CACHE_LD", "L1 data cache access, read", EventCategory.L1D, _A15),
        _ev(0x41, "L1D_CACHE_ST", "L1 data cache access, write", EventCategory.L1D, _A15),
        _ev(0x42, "L1D_CACHE_REFILL_LD", "L1 data cache refill, read", EventCategory.L1D, _A15),
        _ev(0x43, "L1D_CACHE_REFILL_WR", "L1 data cache refill, write", EventCategory.L1D, _A15),
        _ev(0x4C, "L1D_TLB_REFILL_LD", "L1 data TLB refill, read", EventCategory.DTLB, _A15),
        _ev(0x4D, "L1D_TLB_REFILL_ST", "L1 data TLB refill, write", EventCategory.DTLB, _A15),
        _ev(0x50, "L2D_CACHE_LD", "L2 data cache access, read", EventCategory.L2, _A15),
        _ev(0x51, "L2D_CACHE_ST", "L2 data cache access, write", EventCategory.L2, _A15),
        _ev(0x52, "L2D_CACHE_REFILL_LD", "L2 data cache refill, read", EventCategory.L2, _A15),
        _ev(0x53, "L2D_CACHE_REFILL_ST", "L2 data cache refill, write", EventCategory.L2, _A15),
        _ev(0x60, "BUS_ACCESS_LD", "Bus access, read", EventCategory.BUS, _A15),
        _ev(0x61, "BUS_ACCESS_ST", "Bus access, write", EventCategory.BUS, _A15),
        _ev(0x62, "BUS_ACCESS_SHARED", "Bus access, normal, cacheable, shareable", EventCategory.BUS, _A15),
        _ev(0x63, "BUS_ACCESS_NOT_SHARED", "Bus access, not shareable", EventCategory.BUS, _A15),
        _ev(0x64, "BUS_ACCESS_NORMAL", "Bus access, normal", EventCategory.BUS, _A15),
        _ev(0x65, "BUS_ACCESS_PERIPH", "Bus access, peripheral", EventCategory.BUS, _A15),
        _ev(0x66, "MEM_ACCESS_LD", "Data memory access, read", EventCategory.L1D, _A15),
        _ev(0x67, "MEM_ACCESS_ST", "Data memory access, write", EventCategory.L1D, _A15),
        _ev(0x68, "UNALIGNED_LD_SPEC", "Unaligned access, read", EventCategory.UNALIGNED, _A15, True),
        _ev(0x69, "UNALIGNED_ST_SPEC", "Unaligned access, write", EventCategory.UNALIGNED, _A15, True),
        _ev(0x6A, "UNALIGNED_LDST_SPEC", "Unaligned access", EventCategory.UNALIGNED, _A15, True),
        _ev(0x6C, "LDREX_SPEC", "Exclusive load speculatively executed", EventCategory.SYNC, _A15, True),
        _ev(0x6D, "STREX_PASS_SPEC", "Exclusive store pass speculatively executed", EventCategory.SYNC, _A15, True),
        _ev(0x6E, "STREX_FAIL_SPEC", "Exclusive store fail speculatively executed", EventCategory.SYNC, _A15, True),
        _ev(0x70, "LD_SPEC", "Load speculatively executed", EventCategory.SPECULATION, _A15, True),
        _ev(0x71, "ST_SPEC", "Store speculatively executed", EventCategory.SPECULATION, _A15, True),
        _ev(0x72, "LDST_SPEC", "Load or store speculatively executed", EventCategory.SPECULATION, _A15, True),
        _ev(0x73, "DP_SPEC", "Integer data processing speculatively executed", EventCategory.SPECULATION, _A15, True),
        _ev(0x74, "ASE_SPEC", "Advanced SIMD speculatively executed", EventCategory.SPECULATION, _A15, True),
        _ev(0x75, "VFP_SPEC", "VFP floating-point speculatively executed", EventCategory.SPECULATION, _A15, True),
        _ev(0x76, "PC_WRITE_SPEC", "Software change of PC speculatively executed", EventCategory.BRANCH, _A15, True),
        _ev(0x78, "BR_IMMED_SPEC", "Immediate branch speculatively executed", EventCategory.BRANCH, _A15, True),
        _ev(0x79, "BR_RETURN_SPEC", "Procedure return speculatively executed", EventCategory.BRANCH, _A15, True),
        _ev(0x7A, "BR_INDIRECT_SPEC", "Indirect branch speculatively executed", EventCategory.BRANCH, _A15, True),
        _ev(0x7C, "ISB_SPEC", "ISB barrier speculatively executed", EventCategory.SYNC, _A15, True),
        _ev(0x7D, "DSB_SPEC", "DSB barrier speculatively executed", EventCategory.SYNC, _A15, True),
        _ev(0x7E, "DMB_SPEC", "DMB barrier speculatively executed", EventCategory.SYNC, _A15, True),
    ]
}

_BY_MNEMONIC: dict[str, PmuEvent] = {e.mnemonic: e for e in PMU_EVENTS.values()}


def event_by_mnemonic(mnemonic: str) -> PmuEvent:
    """Look up an event by its ARM mnemonic.

    Raises:
        KeyError: If the mnemonic is not in the catalog.
    """
    return _BY_MNEMONIC[mnemonic]


def event_name(number: int) -> str:
    """Return ``"0xNN MNEMONIC"`` for a known event, or ``"0xNN"`` otherwise."""
    event = PMU_EVENTS.get(number)
    if event is None:
        return f"0x{number:02X}"
    return f"{event.hex_id} {event.mnemonic}"


def events_for_core(core: str) -> list[PmuEvent]:
    """All catalog events implemented by ``core`` (``"A7"`` or ``"A15"``).

    The list is sorted by event number, matching PMU enumeration order.
    """
    if core not in ("A7", "A15"):
        raise ValueError(f"unknown core {core!r}; expected 'A7' or 'A15'")
    return sorted(
        (e for e in PMU_EVENTS.values() if core in e.cores),
        key=lambda e: e.number,
    )


def mnemonics(numbers: Iterable[int]) -> list[str]:
    """Map event numbers to mnemonics, preserving order."""
    return [PMU_EVENTS[n].mnemonic for n in numbers]
