"""Matching gem5 statistics to hardware PMC events.

Section IV-E of the paper matches key gem5 events to their HW PMC equivalents
so the two can be compared directly (Fig. 6), and Section V needs the same
matching to feed a PMC-trained power model with gem5-simulated inputs.

Matches are expressed as linear combinations of gem5 stats because several
PMCs have no single gem5 counterpart (e.g. ``BUS_ACCESS`` is the sum of DRAM
read and write requests).  Each match also records a :class:`MatchQuality`,
capturing the paper's observations that some matches are only approximate and
some gem5 counters are outright misclassified (gem5 counts VFP instructions
under the SIMD stat — Section V).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Mapping

from repro.events.armv7_pmu import PMU_EVENTS


class MatchQuality(Enum):
    """How trustworthy a gem5↔PMC match is, per the paper's findings."""

    EXACT = "exact"
    APPROXIMATE = "approximate"
    MISCLASSIFIED = "misclassified"
    UNAVAILABLE = "unavailable"


@dataclass(frozen=True)
class EventMatch:
    """A PMC event expressed as a linear combination of gem5 stats.

    Attributes:
        pmu_event: The hardware event number (e.g. ``0x10``).
        terms: ``(coefficient, gem5 short stat name)`` pairs; the match value
            is their weighted sum.
        quality: Reliability classification of the match.
        note: Free-text caveat shown in reports.
    """

    pmu_event: int
    terms: tuple[tuple[float, str], ...]
    quality: MatchQuality = MatchQuality.EXACT
    note: str = ""

    def evaluate(self, gem5_stats: Mapping[str, float]) -> float:
        """Evaluate the match against a dict of gem5 stats (short names).

        Raises:
            KeyError: If a referenced stat is missing from ``gem5_stats``.
        """
        return sum(coeff * gem5_stats[name] for coeff, name in self.terms)

    @property
    def mnemonic(self) -> str:
        """Mnemonic of the matched PMU event."""
        return PMU_EVENTS[self.pmu_event].mnemonic

    def describe(self) -> str:
        """Human-readable equation, e.g. ``0x19 = readReqs + writeReqs``."""
        parts = []
        for coeff, name in self.terms:
            if coeff == 1.0:
                parts.append(name)
            elif coeff == -1.0:
                parts.append(f"- {name}")
            else:
                parts.append(f"{coeff:g}*{name}")
        rhs = " + ".join(parts).replace("+ -", "-")
        return f"0x{self.pmu_event:02X} {self.mnemonic} = {rhs}"


def _m(
    pmu_event: int,
    *terms: tuple[float, str],
    quality: MatchQuality = MatchQuality.EXACT,
    note: str = "",
) -> EventMatch:
    return EventMatch(pmu_event, tuple(terms), quality, note)


def default_event_matches() -> dict[int, EventMatch]:
    """The paper's gem5↔PMC matching table for the Cortex-A15 model.

    Returns a dict keyed by PMU event number.  Events absent from the dict
    have no usable gem5 equivalent at all (the power-model event selection
    treats those as restricted — Section V).
    """
    matches = [
        _m(0x08, (1.0, "commit.committedInsts")),
        _m(0x11, (1.0, "cpu.numCycles")),
        _m(
            0x01,
            (1.0, "icache.overall_misses"),
            quality=MatchQuality.APPROXIMATE,
            note="gem5 accesses the L1I per instruction, not per line fetch",
        ),
        _m(
            0x14,
            (1.0, "icache.overall_accesses"),
            quality=MatchQuality.APPROXIMATE,
            note="gem5 counts ~2x the HW event (per-instruction access)",
        ),
        _m(
            0x02,
            (1.0, "itb.misses"),
            quality=MatchQuality.APPROXIMATE,
            note="gem5 models a 64-entry L1 ITLB; HW has 32 entries",
        ),
        _m(0x05, (1.0, "dtb.misses"), quality=MatchQuality.APPROXIMATE),
        _m(0x04, (1.0, "dcache.overall_accesses")),
        _m(0x03, (1.0, "dcache.overall_misses")),
        _m(0x40, (1.0, "dcache.ReadReq_accesses")),
        _m(0x41, (1.0, "dcache.WriteReq_accesses")),
        _m(0x42, (1.0, "dcache.ReadReq_misses")),
        _m(
            0x43,
            (1.0, "dcache.WriteReq_misses"),
            quality=MatchQuality.APPROXIMATE,
            note="write-allocate policy differences inflate the gem5 count",
        ),
        _m(
            0x15,
            (1.0, "dcache.writebacks"),
            quality=MatchQuality.MISCLASSIFIED,
            note="MPE above 1000% observed for both total and rate",
        ),
        _m(
            0x16,
            (1.0, "l2.overall_accesses"),
            quality=MatchQuality.APPROXIMATE,
            note="HW L2 data loads equated to gem5 L2 cache accesses",
        ),
        _m(0x17, (1.0, "l2.overall_misses")),
        _m(0x18, (1.0, "l2.writebacks")),
        _m(0x19, (1.0, "mem_ctrls.readReqs"), (1.0, "mem_ctrls.writeReqs")),
        _m(0x12, (1.0, "branchPred.condPredicted")),
        _m(0x10, (1.0, "branchPred.condIncorrect")),
        _m(0x1B, (1.0, "iew.iewExecutedInsts")),
        _m(0x13, (1.0, "dcache.overall_accesses"), quality=MatchQuality.APPROXIMATE),
        _m(0x66, (1.0, "dcache.ReadReq_accesses"), quality=MatchQuality.APPROXIMATE),
        _m(0x67, (1.0, "dcache.WriteReq_accesses"), quality=MatchQuality.APPROXIMATE),
        _m(0x70, (1.0, "iew.iewExecLoadInsts")),
        _m(0x71, (1.0, "iew.exec_stores")),
        _m(
            0x72,
            (1.0, "iew.iewExecLoadInsts"),
            (1.0, "iew.exec_stores"),
        ),
        _m(0x73, (1.0, "commit.int_insts"), quality=MatchQuality.APPROXIMATE),
        _m(
            0x74,
            (1.0, "commit.vec_insts"),
            quality=MatchQuality.MISCLASSIFIED,
            note="gem5 classifies VFP floating-point as SIMD",
        ),
        _m(
            0x75,
            (1.0, "commit.fp_insts"),
            quality=MatchQuality.MISCLASSIFIED,
            note="gem5 classifies VFP floating-point as SIMD",
        ),
        _m(0x76, (1.0, "iew.exec_branches")),
        _m(0x78, (1.0, "fetch.Branches"), quality=MatchQuality.APPROXIMATE),
        _m(0x79, (1.0, "branchPred.usedRAS"), quality=MatchQuality.APPROXIMATE),
        _m(0x7A, (1.0, "branchPred.indirectLookups"), quality=MatchQuality.APPROXIMATE),
        _m(
            0x7E,
            (1.0, "commit.membars"),
            quality=MatchQuality.APPROXIMATE,
            note="gem5 does not split DMB/DSB barriers",
        ),
        _m(0x0D, (1.0, "commit.branches"), quality=MatchQuality.APPROXIMATE),
        _m(0x06, (1.0, "commit.loads")),
        _m(
            0x07,
            (1.0, "commit.refs"),
            (-1.0, "commit.loads"),
            quality=MatchQuality.APPROXIMATE,
        ),
    ]
    return {m.pmu_event: m for m in matches}


#: PMC events the paper found to have *no* usable gem5 equivalent; the power
#: model event selection excludes these when building gem5-compatible models
#: (Section V names unaligned accesses explicitly).
UNAVAILABLE_IN_GEM5: frozenset[int] = frozenset({0x0F, 0x68, 0x69, 0x6A, 0x6C, 0x6D, 0x6E})

#: Events available in gem5 but measured by the paper to be badly modelled;
#: removed from the selection pool when a substitute exists (Section V names
#: 0x15, with an MPE above 1000 %, and the misclassified VFP/SIMD pair).
#: 0x43 stays available — the paper's final model includes it despite its
#: 9.9x over-count, relying on component cancellation (Section VI).
UNRELIABLE_IN_GEM5: frozenset[int] = frozenset({0x15, 0x75, 0x74})
