"""Event catalogs and cross-domain event matching.

This subpackage defines the two statistic namespaces that GemStone mediates
between:

* :mod:`repro.events.armv7_pmu` — the ARMv7 / Cortex-A15 Performance
  Monitoring Unit (PMU) event catalog, identified by hexadecimal event
  numbers (``0x08`` = instructions retired, ``0x11`` = CPU cycles, ...).
* :mod:`repro.events.gem5_stats` — the gem5 statistics namespace
  (``system.cpu.branchPred.condIncorrect``, ``system.cpu.itb.misses``, ...).

:mod:`repro.events.matching` holds the equations relating one to the other,
including the deliberately imperfect matches documented in the paper
(Section IV-E), e.g. gem5 counting VFP instructions as SIMD.
"""

from repro.events.armv7_pmu import (
    PMU_EVENTS,
    PmuEvent,
    event_by_mnemonic,
    event_name,
    events_for_core,
)
from repro.events.gem5_stats import GEM5_STAT_GROUPS, Gem5StatCatalog
from repro.events.matching import EventMatch, MatchQuality, default_event_matches

__all__ = [
    "PMU_EVENTS",
    "PmuEvent",
    "event_by_mnemonic",
    "event_name",
    "events_for_core",
    "GEM5_STAT_GROUPS",
    "Gem5StatCatalog",
    "EventMatch",
    "MatchQuality",
    "default_event_matches",
]
