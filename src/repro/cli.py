"""The ``gemstone`` command-line tool.

Mirrors the workflow of the paper's released software::

    gemstone report --core A15 --model gem5-ex5-big      # full evaluation
    gemstone report --checkpoint-dir run/ --resume       # crash-safe resume
    gemstone headline --core A15                         # exec-time errors
    gemstone lmbench --machine gem5-ex5-little           # Fig. 4 sweep
    gemstone power-model --core A15                      # Section V model
    gemstone bp-fix                                      # Section VII swing
    gemstone campaign run --board shared/ --shards 4     # sharded campaign
    gemstone campaign worker --board shared/             # join from anywhere
    gemstone lint src tests                              # determinism linter
    gemstone report --trace-out trace/                   # + Perfetto trace
    gemstone trace summary trace/                        # run-health tables

All commands are offline and deterministic; ``--instructions`` trades
fidelity for speed.  ``--log-level INFO`` (optionally ``--log-json``)
surfaces the library's structured diagnostics on stderr.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.pipeline import GemStone, GemStoneConfig
from repro.core.report import (
    render_dvfs_figure,
    render_event_ratio_table,
    render_pmc_correlation_figure,
    render_power_energy_figure,
    render_power_model_summary,
    render_workload_characterisation,
    render_workload_mpe_figure,
    text_table,
)
from repro.obs.exporters import (
    CHROME_FILE,
    EVENTS_FILE,
    read_event_stream,
    slowest_spans,
    summarize_spans,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.log import LEVELS, configure_logging
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.machine import machine_by_name
from repro.workloads.microbench import memory_latency_sweep


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--core", choices=("A7", "A15"), default="A15")
    parser.add_argument(
        "--instructions",
        type=int,
        default=60_000,
        help="trace length per workload (lower = faster, coarser)",
    )
    parser.add_argument("--model", default=None, help="gem5 machine name")
    parser.add_argument("--out", default=None, help="write output to a file")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for on-disk simulation-result caching",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="simulation worker processes (0 = one per CPU core); "
        "results are bit-identical at any setting",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=3,
        help="attempts per simulation job before it counts as failed "
        "(deterministic exponential backoff between attempts)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job timeout for pooled simulations; a job exceeding it "
        "is rerun serially in the parent",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "columnar", "scalar"),
        default="auto",
        help="replay engine for every simulation (auto picks columnar; "
        "both engines are bit-identical)",
    )
    parser.add_argument(
        "--guard-level",
        choices=("off", "sentinel", "paranoid"),
        default="sentinel",
        help="runtime guardrails over the replay engine: sentinel samples "
        "jobs through both engines and falls back to scalar on any "
        "divergence/NaN/corrupt decode; paranoid dual-replays every job",
    )
    parser.add_argument(
        "--log-level",
        choices=LEVELS,
        default=None,
        help="emit the library's structured diagnostics on stderr",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="log as JSON lines instead of text (implies --log-level "
        "warning when none is given)",
    )


def _gemstone(args: argparse.Namespace) -> GemStone:
    from repro.sim.executor import RetryPolicy

    jobs = getattr(args, "jobs", 1)
    retries = getattr(args, "retries", 3)
    return GemStone(
        GemStoneConfig(
            core=args.core,
            gem5_machine=args.model,
            trace_instructions=args.instructions,
            cache_dir=getattr(args, "cache_dir", None),
            jobs=None if jobs == 0 else jobs,
            retry=RetryPolicy(max_attempts=max(1, retries)),
            sim_timeout_seconds=getattr(args, "job_timeout", None),
            engine=getattr(args, "engine", "auto"),
            guard_level=getattr(args, "guard_level", "sentinel"),
            checkpoint_dir=getattr(args, "checkpoint_dir", None),
            resume=getattr(args, "resume", False),
            trace_dir=getattr(args, "trace_out", None),
        )
    )


def _emit(text: str, out: str | None) -> None:
    if out:
        with open(out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {out}")
    else:
        print(text)


def cmd_report(args: argparse.Namespace) -> int:
    """Print or write the full GemStone evaluation report.

    With ``--checkpoint-dir`` every completed phase is journalled and
    checkpointed; a run killed by SIGINT/SIGTERM (or a crash) can be
    re-run with ``--resume`` and completes from the last finished phase,
    producing a byte-identical report.
    """
    gs = _gemstone(args)
    if gs.runstate is not None:
        with gs.runstate.interruptible():
            text = gs.report()
    else:
        text = gs.report()
    if args.trace_out:
        paths = gs.export_trace()
        gs.tracer.close()
        print(f"wrote {paths['chrome']} and {paths['metrics']}", file=sys.stderr)
    _emit(text, args.out)
    return 0


def cmd_headline(args: argparse.Namespace) -> int:
    """Print the execution-time MAPE/MPE table per OPP."""
    gs = _gemstone(args)
    dataset = gs.dataset
    rows = [
        [f"{f / 1e6:.0f} MHz", dataset.time_mape(f), dataset.time_mpe(f)]
        for f in dataset.frequencies
    ]
    rows.append(["ALL", dataset.time_mape(), dataset.time_mpe()])
    _emit(
        text_table(
            ["frequency", "time MAPE %", "time MPE %"],
            rows,
            title=f"{dataset.gem5_model} vs hardware {args.core}",
        ),
        args.out,
    )
    return 0


def cmd_lmbench(args: argparse.Namespace) -> int:
    """Print the Fig. 4 memory-latency sweep for one machine."""
    machine = machine_by_name(args.machine)
    points = memory_latency_sweep(machine, stride_b=args.stride)
    rows = [[f"{p.size_kb} KiB", p.ns_per_access] for p in points]
    _emit(
        text_table(
            ["array size", "ns / access"],
            rows,
            title=f"lat_mem_rd (stride {args.stride}) on {machine.name}",
        ),
        args.out,
    )
    return 0


def cmd_power_model(args: argparse.Namespace) -> int:
    """Build and summarise the Section V power model."""
    gs = _gemstone(args)
    model = gs.build_power_model(restrained=not args.unrestricted)
    lines = [render_power_model_summary(model)]
    if args.equations:
        lines.append("")
        lines.append(model.gem5_equations())
    _emit("\n".join(lines), args.out)
    return 0


def cmd_bp_fix(args: argparse.Namespace) -> int:
    """Compare the pre- and post-BP-fix models (Section VII)."""
    buggy = _gemstone(args)
    fixed = buggy.with_machine("gem5-ex5-big-fixed")
    rows = []
    for label, gs in (("pre-fix", buggy), ("post-fix", fixed)):
        dataset = gs.dataset
        rows.append([label, dataset.gem5_model, dataset.time_mape(), dataset.time_mpe()])
    _emit(
        text_table(
            ["model", "machine", "time MAPE %", "time MPE %"],
            rows,
            title="Section VII: effect of the branch-predictor bug fix",
        ),
        args.out,
    )
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    """Regenerate a single paper figure as text."""
    gs = _gemstone(args)
    renderers = {
        "fig3": lambda: render_workload_mpe_figure(gs.workload_clusters),
        "fig5": lambda: render_pmc_correlation_figure(gs.pmc_correlation),
        "fig6": lambda: render_event_ratio_table(gs.event_comparison),
        "fig7": lambda: render_power_energy_figure(gs.power_energy),
        "fig8": lambda: render_dvfs_figure(gs.dvfs),
        "characterisation": lambda: render_workload_characterisation(
            gs.dataset, gs.config.analysis_freq_hz
        ),
    }
    _emit(renderers[args.figure](), args.out)
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Export datasets as CSV or the fitted power model as JSON."""
    from repro.core.model_io import (
        power_dataset_to_csv,
        save_power_model,
        validation_to_csv,
    )

    gs = _gemstone(args)
    if args.what == "validation-csv":
        _emit(validation_to_csv(gs.dataset).rstrip("\n"), args.out)
    elif args.what == "power-csv":
        _emit(power_dataset_to_csv(gs.power_dataset).rstrip("\n"), args.out)
    else:  # power-model
        if not args.out:
            raise SystemExit("--out FILE required for power-model export")
        save_power_model(gs.power_model, args.out)
        print(f"wrote {args.out}")
    return 0


def cmd_runtime_power(args: argparse.Namespace) -> int:
    """Print the per-window run-time power trace of one workload."""
    from repro.core.runtime_power import (
        compile_equations,
        mean_power,
        runtime_power_trace,
        trace_energy,
    )
    from repro.workloads.suites import workload_by_name

    gs = _gemstone(args)
    equations = compile_equations(gs.power_model.gem5_equations())
    profile = workload_by_name(args.workload)
    freq = args.freq_mhz * 1e6
    samples = runtime_power_trace(
        gs.gem5, profile, freq, equations, n_windows=args.windows
    )
    rows = [
        [f"{s.start_seconds:.3f}s", f"{s.duration_seconds:.3f}s", s.power_w]
        for s in samples
    ]
    lines = [
        text_table(
            ["window start", "duration", "power (W)"],
            rows,
            title=(
                f"Run-time power of {profile.name} on {gs.gem5.machine.name} "
                f"@ {args.freq_mhz:.0f} MHz"
            ),
        ),
        f"mean power {mean_power(samples):.3f} W, "
        f"energy {trace_energy(samples):.2f} J",
    ]
    _emit("\n".join(lines), args.out)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Inspect or re-export a ``--trace-out`` directory (run health).

    ``summary`` aggregates spans by name; ``slowest`` lists the longest
    individual spans; ``profile`` attributes replay cycles and seconds
    per columnar pass; ``export`` rebuilds (and schema-validates) the
    Chrome trace-event JSON from the raw event stream.

    The directory may be a plain ``--trace-out`` directory or a campaign
    board: board directories transparently stitch every shard's
    checksummed segments (plus the coordinator's stream, when present)
    into one campaign-wide trace with per-shard tracks.
    """
    from repro.obs.merge import load_trace_records

    try:
        records, names = load_trace_records(args.trace_dir)
    except FileNotFoundError:
        print(f"no trace stream in {args.trace_dir}", file=sys.stderr)
        return 1
    segments = sorted(
        {int(r.get("segment", 0)) for r in records}
    )
    if args.action == "summary":
        rows = [
            [e["name"], e["count"], e["total_ms"], e["mean_ms"], e["max_ms"]]
            for e in summarize_spans(records)
        ]
        _emit(
            text_table(
                ["span", "count", "total ms", "mean ms", "max ms"],
                rows,
                title=(
                    f"{len(records)} trace records across "
                    f"{max(len(segments), 1)} run segment(s)"
                ),
            ),
            args.out,
        )
    elif args.action == "slowest":
        rows = [
            [r["path"], r.get("segment", 0), r.get("status", "ok"),
             float(r["dur_us"]) / 1000.0]
            for r in slowest_spans(records, top=args.top)
        ]
        _emit(
            text_table(
                ["span path", "segment", "status", "ms"],
                rows,
                title=f"slowest {len(rows)} spans",
            ),
            args.out,
        )
    elif args.action == "profile":
        from repro.obs.prof import profile_records

        profile = profile_records(records)
        rows = [
            [
                row["pass"],
                row["calls"],
                row["seconds"] * 1e3,
                row["cycles"],
                f"{row['share']:.1%}",
            ]
            for row in profile["rows"]
        ]
        lines = [
            text_table(
                ["pass", "calls", "total ms", "cycles", "share"],
                rows,
                title=(
                    f"replay profile over {profile['replays']} "
                    "simulation(s)"
                ),
            ),
            (
                f"attributed {profile['attributed_cycles']:.0f} of "
                f"{profile['core_cycles']:.0f} simulated cycles "
                f"(coverage {profile['coverage']:.1%})"
            ),
        ]
        _emit("\n".join(lines), args.out)
    else:  # export
        path = args.out or os.path.join(args.trace_dir, CHROME_FILE)
        n_events = write_chrome_trace(records, path, process_names=names)
        from json import load

        with open(path) as handle:
            validate_chrome_trace(load(handle))
        print(f"wrote {path} ({n_events} events, schema OK)")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Distributed sharded campaigns over a shared job board.

    ``run`` coordinates: it syncs the board to the configuration
    (incremental — jobs whose content-addressed result is already on the
    board are reused, never re-run), spawns shard workers, steals the
    leases of lost ones, and prints the final report.  ``worker`` joins an
    existing board from any process or host sharing the directory.
    ``status`` prints the board counts and the journal tail;
    ``status --detail`` adds per-shard progress, derived health from the
    merged shard metrics, an ETA from journal completion deltas, and the
    shard-count auto-tune hint.
    """
    from repro.sim.campaign import CampaignBoard, run_campaign, run_worker

    if args.action == "status":
        try:
            board = CampaignBoard.open(args.board)
        except (FileNotFoundError, ValueError) as exc:
            print(f"no campaign board at {args.board}: {exc}", file=sys.stderr)
            return 1
        status = board.status()
        lines = [
            text_table(
                ["state", "jobs"],
                [[state, n] for state, n in status.items()],
                title=f"campaign board {args.board}",
            )
        ]
        journal = board.read_journal()
        if getattr(args, "detail", False):
            lines.append("")
            lines.extend(_campaign_detail(args.board, status, journal))
        tail = journal[-args.tail :]
        if tail:
            lines.append("")
            lines.append(
                text_table(
                    ["seq", "event", "key", "owner"],
                    [
                        [r["seq"], r["event"], str(r.get("key", ""))[:12],
                         r.get("owner", "")]
                        for r in tail
                    ],
                    title=f"journal tail ({len(tail)} records)",
                )
            )
        _emit("\n".join(lines), args.out)
        return 0

    if args.action == "worker":
        try:
            report = run_worker(
                args.board,
                owner=args.owner,
                engine=args.engine,
                guard_level=args.guard_level,
                max_jobs=args.max_jobs,
            )
        except (FileNotFoundError, ValueError) as exc:
            print(f"no campaign board at {args.board}: {exc}", file=sys.stderr)
            return 1
        print(
            f"{report.owner}: {report.done} done "
            f"({report.adopted} adopted, {report.stolen} stolen leases, "
            f"{report.errors} errors)"
        )
        return 0

    # run: coordinate shards, then collate and report.
    from repro.sim.executor import RetryPolicy

    config = GemStoneConfig(
        core=args.core,
        gem5_machine=args.model,
        trace_instructions=args.instructions,
        retry=RetryPolicy(max_attempts=max(1, args.retries)),
        engine=args.engine,
        guard_level=args.guard_level,
    )
    tracer = NULL_TRACER
    if args.trace_out is not None:
        os.makedirs(args.trace_out, exist_ok=True)
        tracer = Tracer(
            enabled=True,
            stream_path=os.path.join(args.trace_out, EVENTS_FILE),
        )
    result = run_campaign(
        config,
        args.board,
        shards=args.shards,
        ttl_seconds=args.ttl,
        collate=not args.no_collate,
        tracer=tracer,
    )
    summary = [
        f"board {args.board}: {result.status['done']} done, "
        f"{result.status['poisoned']} poisoned, "
        f"{result.lost_shards} shard(s) lost",
    ]
    for _key, workload, reason in result.poisoned:
        summary.append(f"  poisoned {workload}: {reason}")
    for name, value in result.counters.items():
        if value:
            summary.append(f"  {name} = {value:g}")
    print("\n".join(summary), file=sys.stderr)
    if args.trace_out is not None:
        from repro.obs.merge import export_campaign_trace

        tracer.close()
        paths = export_campaign_trace(args.board, args.trace_out)
        print(
            f"wrote {paths['chrome']} ({paths['events']} events) and "
            f"{paths['metrics']}",
            file=sys.stderr,
        )
    if result.gemstone is not None:
        _emit(result.gemstone.report(), args.out)
    return 1 if result.degraded else 0


def _campaign_detail(board_dir, status, journal) -> list[str]:
    """The ``campaign status --detail`` sections (per-shard + health)."""
    from repro.obs.merge import (
        autotune_hint,
        campaign_health,
        merge_board_metrics,
    )

    per_owner: dict[str, dict[str, int]] = {}

    def _bump(owner, field):
        if not owner:
            return
        row = per_owner.setdefault(
            owner,
            {"done": 0, "claimed": 0, "stolen": 0, "abandoned": 0,
             "poisoned": 0},
        )
        row[field] += 1

    done_clocks: list[float] = []
    guard_rollup: dict[str, int] = {}
    for record in journal:
        event = record.get("event")
        owner = record.get("owner", "")
        if event == "job-done":
            _bump(owner, "done")
            if "clock" in record:
                done_clocks.append(float(record["clock"]))
        elif event == "lease-claimed":
            _bump(owner, "claimed")
        elif event == "lease-stolen":
            _bump(owner, "stolen")
            _bump(record.get("victim", ""), "claimed")
        elif event == "job-abandoned":
            _bump(owner, "abandoned")
        elif event == "job-poisoned":
            _bump(owner, "poisoned")
        if event in ("lease-stolen", "job-abandoned", "job-poisoned",
                     "job-requeued"):
            guard_rollup[event] = guard_rollup.get(event, 0) + 1
    lines = [
        text_table(
            ["shard", "done", "claimed", "stolen", "abandoned", "poisoned"],
            [
                [owner, row["done"], row["claimed"], row["stolen"],
                 row["abandoned"], row["poisoned"]]
                for owner, row in sorted(per_owner.items())
            ],
            title="per-shard progress (from the board journal)",
        )
    ]
    if guard_rollup:
        lines.append(
            "guard events: "
            + ", ".join(
                f"{event} x{n}" for event, n in sorted(guard_rollup.items())
            )
        )
    remaining = status["total"] - status["done"] - status["poisoned"]
    if remaining > 0 and len(done_clocks) >= 2:
        span = max(done_clocks) - min(done_clocks)
        if span > 0:
            rate = (len(done_clocks) - 1) / span
            lines.append(
                f"ETA: ~{remaining / rate:.1f}s for {remaining} "
                f"remaining job(s) at {rate:.2f} jobs/s"
            )
    elif remaining == 0:
        lines.append("ETA: board fully drained")
    try:
        merged = merge_board_metrics(board_dir)
    except (TypeError, ValueError) as exc:
        lines.append(f"merged metrics unavailable: {exc}")
        return lines
    health = campaign_health(
        merged, {o: r["done"] for o, r in per_owner.items()}
    )
    rows = [["steal rate", f"{health['steal_rate']:.1%}"]]
    if health["straggler_skew"] is not None:
        rows.append(
            ["straggler skew", f"{health['straggler_skew']:.2f}"]
        )
    if health["contention_index"] is not None:
        rows.append(
            ["board contention index", f"{health['contention_index']:.3f}"]
        )
    lines.append(
        text_table(
            ["health", "value"], rows,
            title="derived health (merged shard metrics)",
        )
    )
    shards = len(per_owner) or 1
    hint = autotune_hint(
        shards, status["total"], health["steal_rate"],
        health["contention_index"],
    )
    lines.append(
        f"shard auto-tune: suggest {hint['suggested_shards']} shard(s) — "
        f"{hint['reason']}"
    )
    return lines


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the determinism & worker-purity linter (``repro-lint``)."""
    from repro.analysis.cli import main as lint_main

    return lint_main(args.lint_args)


def build_parser() -> argparse.ArgumentParser:
    """Construct the gemstone argument parser."""
    parser = argparse.ArgumentParser(
        prog="gemstone",
        description="GemStone: validate gem5 CPU models against reference hardware",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="full evaluation report")
    _add_common(p)
    p.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="journal + checkpoint every pipeline phase into DIR "
        "(crash-safe: atomic writes, checksummed, config-fingerprinted)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="restore completed phases from --checkpoint-dir instead of "
        "recomputing them; corrupt or stale checkpoints are quarantined "
        "and recomputed",
    )
    p.add_argument(
        "--trace-out",
        default=None,
        metavar="DIR",
        help="stream a span trace into DIR/events.jsonl and export a "
        "Perfetto-loadable Chrome trace plus a metrics snapshot there "
        "(out-of-band: the report itself is unchanged)",
    )
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("headline", help="execution-time MAPE/MPE table")
    _add_common(p)
    p.set_defaults(func=cmd_headline)

    p = sub.add_parser("lmbench", help="memory-latency sweep (Fig. 4)")
    p.add_argument("--machine", default="gem5-ex5-big")
    p.add_argument("--stride", type=int, default=256)
    p.add_argument("--out", default=None)
    p.set_defaults(func=cmd_lmbench)

    p = sub.add_parser("power-model", help="build the Section V power model")
    _add_common(p)
    p.add_argument("--unrestricted", action="store_true",
                   help="allow events without reliable gem5 equivalents")
    p.add_argument("--equations", action="store_true",
                   help="also print gem5 runtime power equations")
    p.set_defaults(func=cmd_power_model)

    p = sub.add_parser("bp-fix", help="pre/post BP-fix comparison (Section VII)")
    _add_common(p)
    p.set_defaults(func=cmd_bp_fix)

    p = sub.add_parser("figure", help="regenerate one paper figure as text")
    p.add_argument(
        "figure",
        choices=("fig3", "fig5", "fig6", "fig7", "fig8", "characterisation"),
    )
    _add_common(p)
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser("export", help="export datasets or the fitted power model")
    p.add_argument(
        "what", choices=("validation-csv", "power-csv", "power-model")
    )
    _add_common(p)
    p.set_defaults(func=cmd_export)

    p = sub.add_parser(
        "runtime-power",
        help="per-window run-time power of one workload (method 2, Fig. 2)",
    )
    p.add_argument("--workload", default="mi-sha")
    p.add_argument("--freq-mhz", type=float, default=1000.0)
    p.add_argument("--windows", type=int, default=8)
    _add_common(p)
    p.set_defaults(func=cmd_runtime_power)

    p = sub.add_parser(
        "trace",
        help="inspect a --trace-out directory or campaign board: span "
        "summary, slowest spans, replay profile, Chrome-trace re-export",
    )
    p.add_argument(
        "action", choices=("summary", "slowest", "profile", "export")
    )
    p.add_argument("trace_dir", metavar="DIR")
    p.add_argument("--top", type=int, default=10,
                   help="spans to list for 'slowest'")
    p.add_argument("--out", default=None, help="write output to a file")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "campaign",
        help="distributed sharded campaigns over a shared job board "
        "(lease-based work stealing, worker-loss recovery, incremental "
        "recompute)",
    )
    p.add_argument(
        "action",
        choices=("run", "worker", "status"),
        help="run = coordinate shards and report; worker = join an "
        "existing board; status = board counts and journal tail",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="DIR",
        help="for 'run': trace the campaign and write the merged "
        "campaign-wide Chrome trace + Prometheus snapshot there",
    )
    p.add_argument(
        "--detail", action="store_true",
        help="for 'status': per-shard progress, derived health, ETA and "
        "the shard-count auto-tune hint",
    )
    p.add_argument(
        "--board", required=True, metavar="DIR",
        help="shared board directory (jobs, leases, journal, results)",
    )
    p.add_argument("--shards", type=int, default=2,
                   help="worker processes to spawn for 'run'")
    p.add_argument("--ttl", type=float, default=5.0, metavar="SECONDS",
                   help="lease heartbeat TTL; an older lease is stolen")
    p.add_argument("--no-collate", action="store_true",
                   help="leave results on the board without building the "
                   "report")
    p.add_argument("--owner", default=None,
                   help="worker identity on the board (default: PID-based)")
    p.add_argument("--max-jobs", type=int, default=None,
                   help="stop this worker after N completed jobs")
    p.add_argument("--tail", type=int, default=10,
                   help="journal records to show for 'status'")
    _add_common(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "lint",
        help="static analysis: determinism & worker-purity rules "
        "(everything after 'lint' is passed to repro-lint)",
        add_help=False,
    )
    p.add_argument("lint_args", nargs=argparse.REMAINDER)
    p.set_defaults(func=cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    arg_list = list(argv) if argv is not None else sys.argv[1:]
    if arg_list and arg_list[0] == "lint":
        # Hand everything after "lint" to repro-lint verbatim: REMAINDER
        # would swallow a leading option (e.g. ``gemstone lint --list-rules``).
        from repro.analysis.cli import main as lint_main

        return lint_main(arg_list[1:])
    args = build_parser().parse_args(arg_list)
    if getattr(args, "log_level", None) or getattr(args, "log_json", False):
        configure_logging(
            getattr(args, "log_level", None) or "warning",
            json_lines=getattr(args, "log_json", False),
        )
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream closed early (e.g. ``gemstone trace summary | head``);
        # exit quietly with the conventional SIGPIPE status.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
