"""Synthetic workload suites, trace compilation, and micro-benchmarks.

The paper evaluates 65 workloads drawn from MiBench, ParMiBench, PARSEC
(single- and four-threaded), LMBench, Roy Longbottom's collection, Dhrystone
and Whetstone.  None of those binaries can run here, so each workload is
described by a :class:`~repro.workloads.profile.WorkloadProfile` capturing the
axes that matter to the paper's analysis — instruction mix, branch behaviour,
code/data footprints, locality, synchronisation rates — and compiled by
:mod:`repro.workloads.trace` into a deterministic ISA-level trace that both
the reference "hardware" platform and the gem5-style model execute.
"""

from repro.workloads.profile import WorkloadProfile
from repro.workloads.suites import (
    POWER_SET,
    VALIDATION_SET,
    all_workloads,
    power_modelling_workloads,
    validation_workloads,
    workload_by_name,
)
from repro.workloads.trace import SyntheticTrace, compile_trace

__all__ = [
    "WorkloadProfile",
    "POWER_SET",
    "VALIDATION_SET",
    "all_workloads",
    "power_modelling_workloads",
    "validation_workloads",
    "workload_by_name",
    "SyntheticTrace",
    "compile_trace",
]
