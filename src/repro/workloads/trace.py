"""Compiling workload profiles into deterministic ISA-level traces.

A trace is *block structured*: the static program is a pool of basic blocks
(each ending in exactly one branch), and the dynamic execution is a sequence
of block ids plus per-execution branch outcomes and memory addresses.  Both
simulators replay the identical trace, so any divergence in their statistics
is attributable purely to micro-architectural configuration — the property
the paper's methodology depends on.

The block structure also keeps simulation fast: the instruction side is
simulated per block (touching the block's cache lines and pages), the data
side per memory operation, and the branch predictor once per block.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from repro.workloads.profile import WorkloadProfile

#: Instruction kind codes used in static block composition.
KIND_NAMES: tuple[str, ...] = (
    "int_alu",
    "mul",
    "div",
    "fp",
    "simd",
    "load",
    "store",
    "ldrex",
    "strex",
    "barrier",
    "branch",
)
KIND_INDEX: dict[str, int] = {name: i for i, name in enumerate(KIND_NAMES)}

CACHE_LINE_BYTES = 64
PAGE_BYTES = 4096
INSTRUCTION_BYTES = 4

CODE_BASE = 0x0001_0000
DATA_BASE = 0x1000_0000
LOCK_BASE = 0x2000_0000


class BranchClass(IntEnum):
    """Behavioural class of a static branch (one per basic block)."""

    LOOP = 0       # loop back-edge: taken except on loop exit
    PATTERN = 1    # short periodic pattern, history-predictable
    BIASED = 2     # Bernoulli(branch_bias)
    RANDOM = 3     # Bernoulli(0.5), data dependent
    CALL = 4       # direct call, always taken
    RETURN = 5     # procedure return, RAS-predictable
    INDIRECT = 6   # indirect jump (switch / virtual call)


class StreamKind(IntEnum):
    """Locality class of a memory-reference stream."""

    SEQ = 0
    STRIDE = 1
    RAND = 2
    LOCK = 3


@dataclass(frozen=True)
class MemSlot:
    """One static memory operation inside a block."""

    kind: int            # KIND_INDEX of load/store/ldrex/strex
    stream: int          # dynamic-address stream id
    unaligned: bool


@dataclass(frozen=True)
class StaticBlock:
    """A static basic block: straight-line instructions ending in a branch."""

    index: int
    addr: int
    n_instrs: int
    kind_counts: tuple[int, ...]      # indexed by KIND_INDEX, incl. the branch
    lines: tuple[int, ...]            # unique i-cache line ids covered
    pages: tuple[int, ...]            # unique i-page ids covered
    mem_slots: tuple[MemSlot, ...]
    branch_class: BranchClass
    branch_backward: bool
    pattern: tuple[bool, ...] = ()
    indirect_targets: tuple[int, ...] = ()

    @property
    def n_mem(self) -> int:
        return len(self.mem_slots)


@dataclass(frozen=True)
class Stream:
    """A dynamic memory-address stream shared by static slots."""

    index: int
    kind: StreamKind
    base: int
    span: int            # bytes of addressable region
    step: int            # bytes advanced per access (SEQ/STRIDE)


@dataclass
class ColumnarTrace:
    """Struct-of-arrays decode of one trace's dynamic execution.

    The columnar replay engine consumes whole event streams as numpy
    arrays instead of dispatching per instruction: the dynamic block
    sequence is expanded once into the exact instruction-side page/line
    fetch events (with the cross-block first-page/first-line dedup the
    scalar loop performs baked in), the flat data-side line/page/write
    columns, and the conditional-branch subsequence the branch predictor
    sees.  Everything here is machine-independent, so one decode serves
    every machine configuration and every DVFS point of a sweep.

    ``*_pos`` columns give the dynamic block index of each event and
    ``*_intra`` its ordinal within the block's phase; together with a
    phase code they reconstruct the scalar engine's exact program order.
    """

    n_dyn: int
    block_seq: np.ndarray        # int32, dynamic block ids
    taken_seq: np.ndarray        # int8
    target_seq: np.ndarray       # int16
    class_seq: np.ndarray        # int8, branch class per dynamic block
    addr_seq: np.ndarray         # int64, branch PC per dynamic block
    backward_seq: np.ndarray     # bool
    wp_near_seq: np.ndarray      # int64, near wrong-path page per dynamic block
    # Instruction-side fetch events (dedup against the previous block applied).
    ipage_page: np.ndarray       # int64
    ipage_pos: np.ndarray        # int32
    ipage_intra: np.ndarray      # int32
    iline_line: np.ndarray       # int64
    iline_pos: np.ndarray        # int32
    iline_intra: np.ndarray      # int32
    # Data-side columns, one row per dynamic memory operation.
    mem_line: np.ndarray         # int64
    mem_page: np.ndarray         # int64
    mem_write: np.ndarray        # bool
    mem_pos: np.ndarray          # int32
    mem_intra: np.ndarray        # int32
    # Conditional-branch subsequence (branch classes LOOP..RANDOM).
    cond_pos: np.ndarray         # int32, dynamic positions
    cond_pc: np.ndarray          # int64
    cond_taken: np.ndarray       # int8
    cond_backward: np.ndarray    # bool
    # Converged fixpoint guesses from prior replays, keyed by geometry
    # tuple.  Purely an accelerator: replaying the same trace on the same
    # geometry (executor sweeps, DVFS points, repeated runs) seeds the
    # streaming/prefetch fixpoints with their known solution, which the
    # engine still verifies before accepting.
    fixpoint_seeds: dict = field(default_factory=dict)
    # Content checksum over every immutable column, stamped at build time
    # (``fixpoint_seeds`` excluded — it is mutable accelerator state).  The
    # guard layer re-verifies it on cross-worker re-attach; 0 means "never
    # stamped" (hand-built instances) and is skipped by validation.
    checksum: int = 0


#: (attribute, dtype kind/itemsize, length group) contract for the decoded
#: form.  Arrays in the same length group must agree; ``"dyn"`` groups must
#: equal ``n_dyn`` exactly.
_COLUMN_SPEC: tuple[tuple[str, str, str], ...] = (
    ("block_seq", "i4", "dyn"),
    ("taken_seq", "i1", "dyn"),
    ("target_seq", "i2", "dyn"),
    ("class_seq", "i1", "dyn"),
    ("addr_seq", "i8", "dyn"),
    ("backward_seq", "b1", "dyn"),
    ("wp_near_seq", "i8", "dyn"),
    ("ipage_page", "i8", "ipage"),
    ("ipage_pos", "i4", "ipage"),
    ("ipage_intra", "i4", "ipage"),
    ("iline_line", "i8", "iline"),
    ("iline_pos", "i4", "iline"),
    ("iline_intra", "i4", "iline"),
    ("mem_line", "i8", "mem"),
    ("mem_page", "i8", "mem"),
    ("mem_write", "b1", "mem"),
    ("mem_pos", "i4", "mem"),
    ("mem_intra", "i4", "mem"),
    ("cond_pos", "i4", "cond"),
    ("cond_pc", "i8", "cond"),
    ("cond_taken", "i1", "cond"),
    ("cond_backward", "b1", "cond"),
)


def columnar_checksum(cols: "ColumnarTrace") -> int:
    """Content checksum of a decode's immutable columns.

    A CRC over every column's raw bytes plus its shape and dtype, cheap
    enough (one pass over the arrays, no Python loop) to re-verify on every
    cross-worker re-attach.  ``fixpoint_seeds`` and the stored ``checksum``
    itself are excluded.
    """
    crc = zlib.crc32(str(cols.n_dyn).encode())
    for name, _, _ in _COLUMN_SPEC:
        arr = np.ascontiguousarray(getattr(cols, name))
        crc = zlib.crc32(f"{name}:{arr.dtype.str}:{arr.shape}".encode(), crc)
        crc = zlib.crc32(arr.tobytes(), crc)
    return crc & 0xFFFF_FFFF


def validate_columnar(cols: "ColumnarTrace") -> list[str]:
    """Check a decode against its shape/dtype/bounds contract + checksum.

    Returns a list of human-readable violations (empty = the decode is
    intact).  Used by the guard layer on cross-worker re-attach: any
    violation means the decoded form was corrupted (or built against a
    different contract) and must be quarantined and re-decoded.
    """
    problems: list[str] = []
    lengths: dict[str, tuple[str, int]] = {}
    for name, kind, group in _COLUMN_SPEC:
        arr = getattr(cols, name)
        if not isinstance(arr, np.ndarray):
            problems.append(f"{name}: not an ndarray ({type(arr).__name__})")
            continue
        if arr.ndim != 1:
            problems.append(f"{name}: expected 1-D, got shape {arr.shape}")
            continue
        if arr.dtype != np.dtype(kind):
            problems.append(
                f"{name}: dtype {arr.dtype} != expected {np.dtype(kind)}"
            )
        if group == "dyn":
            if len(arr) != cols.n_dyn:
                problems.append(
                    f"{name}: length {len(arr)} != n_dyn {cols.n_dyn}"
                )
        elif group in lengths:
            first_name, first_len = lengths[group]
            if len(arr) != first_len:
                problems.append(
                    f"{name}: length {len(arr)} != {first_name} {first_len}"
                )
        else:
            lengths[group] = (name, len(arr))
    if not problems:
        # Bounds: every event position must name a real dynamic block and
        # intra-block ordinals must be non-negative.
        for name in ("ipage_pos", "iline_pos", "mem_pos", "cond_pos"):
            arr = getattr(cols, name)
            if arr.size and (
                int(arr.min()) < 0 or int(arr.max()) >= max(cols.n_dyn, 1)
            ):
                problems.append(f"{name}: positions outside [0, n_dyn)")
        for name in ("ipage_intra", "iline_intra", "mem_intra"):
            arr = getattr(cols, name)
            if arr.size and int(arr.min()) < 0:
                problems.append(f"{name}: negative intra-block ordinal")
    if not problems and cols.checksum:
        actual = columnar_checksum(cols)
        if actual != cols.checksum:
            problems.append(
                f"checksum mismatch: stored {cols.checksum:#010x}, "
                f"recomputed {actual:#010x}"
            )
    return problems


@dataclass
class ReplayTables:
    """Machine-independent replay tables derived from one trace.

    The simulator's hot loop wants every static-block attribute as a flat
    parallel list indexed by block id (no dataclass attribute access per
    dynamic block) and the dynamic sequences as plain Python lists.  None
    of it depends on the machine configuration, and every trace is
    simulated on at least two machines (hardware and model), so the tables
    are built once per trace via :meth:`SyntheticTrace.replay_tables` and
    shared across simulations.

    ``page_tails`` / ``line_tails`` drop each block's first entry: pages
    and lines within a block are distinct and visited in order, so only a
    block's *first* page/line can coincide with the previously fetched
    one — the tail can be replayed without dedup checks.

    The columnar decode used by the vectorized engine hangs off the same
    memo (:meth:`columnar`), so the struct-of-arrays expansion is also
    performed exactly once per trace.
    """

    block_seq: list[int]
    taken_seq: list[int]
    target_seq: list[int]
    mem_lines: list[int]
    mem_pages: list[int]
    block_pages: list[tuple[int, ...]]
    block_lines: list[tuple[int, ...]]
    page_tails: list[tuple[int, ...]]
    line_tails: list[tuple[int, ...]]
    block_last_page: list[int]
    block_last_line: list[int]
    block_addr: list[int]
    block_class: list[int]
    block_backward: list[bool]
    block_n_mem: list[int]
    wp_near_page: list[int]
    mem_write_per_block: list[tuple[bool, ...]]
    code_lines: list[int]
    code_pages: list[int]
    _columnar: "ColumnarTrace | None" = None

    def columnar(self, trace: "SyntheticTrace") -> ColumnarTrace:
        """The struct-of-arrays decode, built on first use and memoised."""
        if self._columnar is None:
            self._columnar = build_columnar_trace(trace, self)
        return self._columnar


_KIND_STORE = KIND_INDEX["store"]
_KIND_STREX = KIND_INDEX["strex"]


def build_replay_tables(trace: "SyntheticTrace") -> ReplayTables:
    """Flatten one trace into :class:`ReplayTables` (see its docstring)."""
    blocks = trace.blocks
    block_pages = [block.pages for block in blocks]
    block_lines = [block.lines for block in blocks]
    return ReplayTables(
        block_seq=trace.block_seq.tolist(),
        taken_seq=trace.taken_seq.tolist(),
        target_seq=trace.indirect_target_seq.tolist(),
        mem_lines=(trace.mem_addrs // CACHE_LINE_BYTES).tolist(),
        mem_pages=(trace.mem_addrs // PAGE_BYTES).tolist(),
        block_pages=block_pages,
        block_lines=block_lines,
        page_tails=[pages[1:] for pages in block_pages],
        line_tails=[lines[1:] for lines in block_lines],
        block_last_page=[pages[-1] for pages in block_pages],
        block_last_line=[lines[-1] for lines in block_lines],
        block_addr=[block.addr for block in blocks],
        block_class=[int(block.branch_class) for block in blocks],
        block_backward=[block.branch_backward for block in blocks],
        block_n_mem=[block.n_mem for block in blocks],
        wp_near_page=[pages[-1] + 1 for pages in block_pages],
        mem_write_per_block=[
            tuple(
                slot.kind == _KIND_STORE or slot.kind == _KIND_STREX
                for slot in block.mem_slots
            )
            for block in blocks
        ],
        code_lines=sorted({line for lines in block_lines for line in lines}),
        code_pages=sorted({page for pages in block_pages for page in pages}),
    )


def _expand_csr(
    starts: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather indices for per-row variable-length slices, plus intra offsets.

    Given per-row slice starts and lengths into some flat array, returns
    ``(indices, intra)`` where ``flat[indices]`` concatenates the slices in
    row order and ``intra`` numbers each element within its row.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    out_off = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=out_off[1:])
    base = np.repeat(out_off[:-1], counts)
    intra = np.arange(total, dtype=np.int64) - base
    indices = np.repeat(starts.astype(np.int64), counts) + intra
    return indices, intra


def build_columnar_trace(
    trace: "SyntheticTrace", tables: ReplayTables | None = None
) -> ColumnarTrace:
    """Decode one trace into :class:`ColumnarTrace` struct-of-arrays form."""
    if tables is None:
        tables = trace.replay_tables()
    bs = np.asarray(trace.block_seq, dtype=np.int32)
    n_dyn = int(bs.size)
    taken = np.asarray(trace.taken_seq, dtype=np.int8)
    targets = np.asarray(trace.indirect_target_seq, dtype=np.int16)

    # Per-static-block flat page/line pools with CSR offsets.
    pages_flat = np.asarray(
        [page for pages in tables.block_pages for page in pages], dtype=np.int64
    )
    lines_flat = np.asarray(
        [line for lines in tables.block_lines for line in lines], dtype=np.int64
    )
    pages_len = np.asarray([len(p) for p in tables.block_pages], dtype=np.int64)
    lines_len = np.asarray([len(li) for li in tables.block_lines], dtype=np.int64)
    pages_off = np.zeros(len(pages_len) + 1, dtype=np.int64)
    np.cumsum(pages_len, out=pages_off[1:])
    lines_off = np.zeros(len(lines_len) + 1, dtype=np.int64)
    np.cumsum(lines_len, out=lines_off[1:])
    first_page = pages_flat[pages_off[:-1]] if pages_flat.size else pages_flat
    first_line = lines_flat[lines_off[:-1]] if lines_flat.size else lines_flat
    last_page = np.asarray(tables.block_last_page, dtype=np.int64)
    last_line = np.asarray(tables.block_last_line, dtype=np.int64)

    # Cross-block dedup: the scalar loop skips a block's first page/line when
    # it equals the previously fetched one.
    drop_page = np.zeros(n_dyn, dtype=np.int64)
    drop_line = np.zeros(n_dyn, dtype=np.int64)
    if n_dyn > 1:
        drop_page[1:] = first_page[bs[1:]] == last_page[bs[:-1]]
        drop_line[1:] = first_line[bs[1:]] == last_line[bs[:-1]]
    page_counts = pages_len[bs] - drop_page
    line_counts = lines_len[bs] - drop_line
    page_idx, ipage_intra = _expand_csr(pages_off[:-1][bs] + drop_page, page_counts)
    line_idx, iline_intra = _expand_csr(lines_off[:-1][bs] + drop_line, line_counts)
    dyn_ids = np.arange(n_dyn, dtype=np.int32)
    ipage_pos = np.repeat(dyn_ids, page_counts)
    iline_pos = np.repeat(dyn_ids, line_counts)

    # Data side: mem_lines/mem_pages are already flat in program order.
    mem_line = np.asarray(tables.mem_lines, dtype=np.int64)
    mem_page = np.asarray(tables.mem_pages, dtype=np.int64)
    write_flat = np.asarray(
        [w for ws in tables.mem_write_per_block for w in ws], dtype=bool
    )
    n_mem_len = np.asarray(tables.block_n_mem, dtype=np.int64)
    n_mem_off = np.zeros(len(n_mem_len) + 1, dtype=np.int64)
    np.cumsum(n_mem_len, out=n_mem_off[1:])
    mem_counts = n_mem_len[bs]
    mem_idx, mem_intra = _expand_csr(n_mem_off[:-1][bs], mem_counts)
    mem_write = (
        write_flat[mem_idx] if write_flat.size else np.zeros(0, dtype=bool)
    )
    mem_pos = np.repeat(dyn_ids, mem_counts)

    class_seq = np.asarray(tables.block_class, dtype=np.int8)[bs]
    addr_seq = np.asarray(tables.block_addr, dtype=np.int64)[bs]
    backward_seq = np.asarray(tables.block_backward, dtype=bool)[bs]
    wp_near_seq = np.asarray(tables.wp_near_page, dtype=np.int64)[bs]

    cond_mask = class_seq <= int(BranchClass.RANDOM)
    cond_pos = np.flatnonzero(cond_mask).astype(np.int32)

    cols = ColumnarTrace(
        n_dyn=n_dyn,
        block_seq=bs,
        taken_seq=taken,
        target_seq=targets,
        class_seq=class_seq,
        addr_seq=addr_seq,
        backward_seq=backward_seq,
        wp_near_seq=wp_near_seq,
        ipage_page=pages_flat[page_idx],
        ipage_pos=ipage_pos,
        ipage_intra=ipage_intra.astype(np.int32),
        iline_line=lines_flat[line_idx],
        iline_pos=iline_pos,
        iline_intra=iline_intra.astype(np.int32),
        mem_line=mem_line,
        mem_page=mem_page,
        mem_write=mem_write,
        mem_pos=mem_pos,
        mem_intra=mem_intra.astype(np.int32),
        cond_pos=cond_pos,
        cond_pc=addr_seq[cond_mask],
        cond_taken=taken[cond_mask],
        cond_backward=backward_seq[cond_mask],
    )
    cols.checksum = columnar_checksum(cols)
    return cols


#: Process-wide replay-table memo keyed by trace identity.  A campaign that
#: simulates the same workload across machines, DVFS points and executor
#: jobs decodes each trace exactly once per process: executor workers
#: receive traces pickled without their decode (see
#: ``SyntheticTrace.__getstate__``) and re-attach the shared tables here.
_REPLAY_MEMO: dict[tuple[str, int, int, int], ReplayTables] = {}
_REPLAY_MEMO_MAX = 64


def _trace_identity(trace: "SyntheticTrace") -> tuple[str, int, int, int]:
    return (trace.name, trace.seed, trace.n_instrs, int(len(trace.block_seq)))


@dataclass
class SyntheticTrace:
    """A compiled, machine-independent dynamic instruction trace.

    Attributes:
        name: Workload name.
        profile: The source profile.
        blocks: Static basic-block pool.
        streams: Memory-address streams.
        block_seq: Dynamic sequence of block indices.
        taken_seq: Branch outcome (taken) per dynamic block.
        indirect_target_seq: For INDIRECT blocks, index into the block's
            target list; ``-1`` elsewhere.
        mem_addrs: Byte addresses of all dynamic memory operations, in
            program order (each block consumes ``block.n_mem`` entries).
        totals: Dynamic instruction counts per kind name.
        branch_class_counts: Dynamic branch counts per :class:`BranchClass`.
        n_instrs: Total dynamic instructions.
        seed: Seed the trace was compiled with (reproducibility record).
    """

    name: str
    profile: WorkloadProfile
    blocks: list[StaticBlock]
    streams: list[Stream]
    block_seq: np.ndarray
    taken_seq: np.ndarray
    indirect_target_seq: np.ndarray
    mem_addrs: np.ndarray
    totals: dict[str, int]
    branch_class_counts: dict[BranchClass, int]
    n_instrs: int
    seed: int
    _replay: ReplayTables | None = field(
        default=None, repr=False, compare=False
    )

    def replay_tables(self) -> ReplayTables:
        """The flattened replay tables, built on first use and memoised.

        The memo is shared process-wide by trace identity (name, seed,
        instruction count, dynamic length), so re-compiled or unpickled
        copies of the same trace — executor jobs, platform vs gem5 layers,
        DVFS sweeps — all reuse one decode.
        """
        if self._replay is None:
            key = _trace_identity(self)
            tables = _REPLAY_MEMO.get(key)
            if tables is None:
                tables = build_replay_tables(self)
                if len(_REPLAY_MEMO) >= _REPLAY_MEMO_MAX:
                    _REPLAY_MEMO.pop(next(iter(_REPLAY_MEMO)))
                _REPLAY_MEMO[key] = tables
            self._replay = tables
        return self._replay

    def columnar(self) -> ColumnarTrace:
        """The struct-of-arrays decode (shared via the replay-table memo)."""
        return self.replay_tables().columnar(self)

    def __getstate__(self):
        # Replay tables are derived data and can be megabytes of numpy
        # arrays; drop them from pickles (executor job submission) and let
        # the receiving process rebuild or reuse its own shared memo.
        state = self.__dict__.copy()
        state["_replay"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    @property
    def n_branches(self) -> int:
        return int(len(self.block_seq))

    @property
    def n_mem_ops(self) -> int:
        return int(len(self.mem_addrs))

    @property
    def ilp(self) -> float:
        return self.profile.ilp

    def block_occurrences(self) -> np.ndarray:
        """Execution count per static block index."""
        return np.bincount(self.block_seq, minlength=len(self.blocks))


def workload_seed(name: str, purpose: str = "trace") -> int:
    """Deterministic seed derived from the workload name and purpose."""
    return zlib.crc32(f"{purpose}:{name}".encode()) & 0x7FFF_FFFF


def _draw_block_size(rng: np.random.Generator, mean: float) -> int:
    size = int(round(rng.normal(mean, mean * 0.35)))
    return max(3, min(size, 40))


def _build_pattern(rng: np.random.Generator, period: int) -> tuple[bool, ...]:
    pattern = rng.random(max(2, period)) < 0.5
    # Guarantee the pattern is non-constant so it genuinely needs history.
    if pattern.all() or not pattern.any():
        pattern[0] = not pattern[0]
    return tuple(bool(b) for b in pattern)


@dataclass
class _Function:
    """Static structure of one hot function during compilation."""

    index: int
    bodies: list[list[int]] = field(default_factory=list)  # loop bodies
    call_block: int | None = None
    return_block: int | None = None


class _TraceBuilder:
    """Single-use builder turning one profile into one trace."""

    def __init__(self, profile: WorkloadProfile, n_instrs: int, seed: int):
        self.profile = profile
        self.target_instrs = n_instrs
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.blocks: list[StaticBlock] = []
        self.streams: list[Stream] = []
        self.functions: list[_Function] = []
        self._code_cursors: list[int] = []
        self._code_regions: list[tuple[int, int]] = []
        self._fn_streams: list[list[int]] = []
        self._lock_stream: int | None = None
        self._pattern_counters: dict[int, int] = {}
        self._indirect_cursor: dict[int, int] = {}
        self._kind_credit = np.zeros(10, dtype=float)
        self._body_trips: dict[tuple[int, int], float] = {}
        # Midpoint start so the first loop created (often the hottest) gets
        # the majority treatment rather than always landing forward.
        self._backward_credit = 0.5

    # ------------------------------------------------------------------ static
    def _new_stream(self, kind: StreamKind, base: int, span: int, step: int) -> int:
        stream = Stream(len(self.streams), kind, base, span, step)
        self.streams.append(stream)
        return stream.index

    def _function_streams(self, fn_index: int) -> list[int]:
        """Per-function pool of data streams (SEQ, STRIDE, RAND)."""
        profile = self.profile
        data_bytes = int(profile.data_kb * 1024)
        n_functions = max(1, profile.n_functions)
        region = max(CACHE_LINE_BYTES * 8, data_bytes // n_functions)
        base = DATA_BASE + fn_index * region
        streams = [
            self._new_stream(StreamKind.SEQ, base, region, 8),
            self._new_stream(StreamKind.SEQ, base + region // 2, region, 4),
            self._new_stream(StreamKind.STRIDE, base, region, profile.stride_b),
            self._new_stream(StreamKind.RAND, DATA_BASE, data_bytes, 0),
            # Dedicated sequential *output* stream: streamed stores write
            # result buffers that are not concurrently read, which is what
            # lets the Cortex-A15's write-streaming detection engage.
            self._new_stream(StreamKind.SEQ, base + region // 4 * 3, region, 8),
        ]
        return streams

    def _pick_stream(self, fn_index: int, is_store: bool = False) -> int:
        profile = self.profile
        r = self.rng.random()
        pool = self._fn_streams[fn_index]
        if r < profile.frac_seq:
            if is_store:
                return pool[4]
            return pool[0] if self.rng.random() < 0.7 else pool[1]
        if r < profile.frac_seq + profile.frac_stride:
            return pool[2]
        return pool[3]

    def _lock_stream_id(self) -> int:
        if self._lock_stream is None:
            self._lock_stream = self._new_stream(
                StreamKind.LOCK, LOCK_BASE, CACHE_LINE_BYTES * 4, 0
            )
        return self._lock_stream

    def _alloc_block_addr(self, fn_index: int, size_bytes: int) -> int:
        start, end = self._code_regions[fn_index]
        cursor = self._code_cursors[fn_index]
        if cursor + size_bytes > end:
            cursor = start
        self._code_cursors[fn_index] = cursor + size_bytes
        return cursor

    def _kind_probs(self) -> np.ndarray:
        profile = self.profile
        probs = np.array(
            [
                profile.frac_int_alu,
                profile.frac_mul,
                profile.frac_div,
                profile.frac_fp,
                profile.frac_simd,
                profile.frac_load,
                profile.frac_store,
                profile.frac_ldrex,
                profile.frac_strex,
                profile.frac_barrier,
            ]
        )
        probs = np.clip(probs, 0.0, None)
        return probs / probs.sum()

    def _sample_kind_counts(self, n_body: int) -> np.ndarray:
        """Near-proportional instruction-kind allocation for one block.

        Largest-remainder rounding of the expected mix, with the leftover
        slots drawn proportionally to the fractional parts.  Hot loop bodies
        dominate dynamic execution, so every block must individually carry a
        representative mix or small workloads would drift badly from their
        profile.
        """
        expected = self._kind_probs() * n_body
        counts = np.floor(expected).astype(np.int64)
        short = n_body - int(counts.sum())
        if short > 0:
            # Bresenham-style credit: every block pays each kind its
            # fractional share; the most-owed kinds get the leftover slots.
            # Deterministic and exactly proportional over many blocks, so a
            # rare kind (e.g. a 0.5% STREX rate) cannot displace a common one
            # in the handful of blocks a tiny workload has.
            self._kind_credit += expected - counts
            for _ in range(short):
                kind = int(np.argmax(self._kind_credit))
                counts[kind] += 1
                self._kind_credit[kind] -= 1.0
        return counts

    def _make_block(
        self,
        fn_index: int,
        branch_class: BranchClass,
        backward: bool,
    ) -> int:
        profile = self.profile
        mean_size = min(40.0, max(3.0, 1.0 / max(profile.frac_branch, 0.03)))
        if branch_class == BranchClass.LOOP:
            # Loop blocks dominate dynamic execution; pinning their size to
            # the mean keeps the realised branch fraction on target even for
            # workloads with only a handful of static blocks.
            n_instrs = max(3, round(mean_size))
        else:
            n_instrs = _draw_block_size(self.rng, mean_size)
        counts = self._sample_kind_counts(n_instrs - 1)
        addr = self._alloc_block_addr(fn_index, n_instrs * INSTRUCTION_BYTES)

        first_line = addr // CACHE_LINE_BYTES
        last_line = (addr + n_instrs * INSTRUCTION_BYTES - 1) // CACHE_LINE_BYTES
        lines = tuple(range(first_line, last_line + 1))
        pages = tuple(sorted({line * CACHE_LINE_BYTES // PAGE_BYTES for line in lines}))

        mem_slots: list[MemSlot] = []
        for kind_name, code in (
            ("load", KIND_INDEX["load"]),
            ("store", KIND_INDEX["store"]),
        ):
            for _ in range(int(counts[code])):
                mem_slots.append(
                    MemSlot(
                        kind=code,
                        stream=self._pick_stream(fn_index, is_store=kind_name == "store"),
                        unaligned=bool(self.rng.random() < profile.frac_unaligned),
                    )
                )
        for code in (KIND_INDEX["ldrex"], KIND_INDEX["strex"]):
            for _ in range(int(counts[code])):
                mem_slots.append(MemSlot(kind=code, stream=self._lock_stream_id(), unaligned=False))
        self.rng.shuffle(mem_slots)  # interleave loads/stores in program order

        full_counts = list(int(c) for c in counts)
        full_counts.append(1)  # the terminal branch

        pattern: tuple[bool, ...] = ()
        if branch_class == BranchClass.PATTERN:
            pattern = _build_pattern(self.rng, profile.pattern_period)

        indirect_targets: tuple[int, ...] = ()
        if branch_class == BranchClass.INDIRECT:
            n_targets = int(self.rng.integers(2, 9))
            indirect_targets = tuple(range(n_targets))

        block = StaticBlock(
            index=len(self.blocks),
            addr=addr,
            n_instrs=n_instrs,
            kind_counts=tuple(full_counts),
            lines=lines,
            pages=pages,
            mem_slots=tuple(mem_slots),
            branch_class=branch_class,
            branch_backward=backward,
            pattern=pattern,
            indirect_targets=indirect_targets,
        )
        self.blocks.append(block)
        return block.index

    def _conditional_class(self) -> BranchClass:
        """Class of a non-back-edge conditional branch, per profile mix."""
        profile = self.profile
        total = (
            profile.pattern_branch_frac
            + profile.biased_branch_frac
            + profile.random_branch_frac
        )
        if total <= 0:
            return BranchClass.BIASED
        r = self.rng.random() * total
        if r < profile.pattern_branch_frac:
            return BranchClass.PATTERN
        if r < profile.pattern_branch_frac + profile.biased_branch_frac:
            return BranchClass.BIASED
        return BranchClass.RANDOM

    def _sample_body_length(self) -> int:
        """Draw a loop-body length targeting the profile's back-edge fraction.

        A loop body of ``k`` blocks executes ``k`` branches per iteration of
        which exactly one is the back-edge, so across bodies (weighted by the
        branches each executes) the dynamic back-edge fraction is ``1/E[k]``.
        A two-point mixture on consecutive integer lengths hits any target
        mean exactly.
        """
        target = min(1.0, max(0.12, self.profile.loop_branch_frac))
        mean_k = 1.0 / target
        k0 = int(mean_k)
        k1 = k0 + 1
        if abs(k0 - mean_k) < 1e-9:
            return k0
        weight_k0 = k1 - mean_k
        return k0 if self.rng.random() < weight_k0 else k1

    def _build_static(self) -> None:
        profile = self.profile
        code_bytes = int(profile.code_kb * 1024)
        n_functions = max(1, profile.n_functions)
        region = max(256, code_bytes // n_functions)
        # Dynamic indirect fraction = (static indirect share of non-back-edge
        # blocks) * (non-back-edge dynamic fraction); solve for the former.
        non_backedge = max(1e-6, 1.0 - profile.loop_branch_frac)
        p_indirect = min(0.8, profile.indirect_frac / non_backedge)

        for fn_index in range(n_functions):
            start = CODE_BASE + fn_index * region
            self._code_regions.append((start, start + region))
            self._code_cursors.append(start)
            self._fn_streams.append(self._function_streams(fn_index))

            function = _Function(fn_index)
            n_bodies = int(self.rng.integers(1, 4))
            for _ in range(n_bodies):
                body_len = self._sample_body_length()
                body: list[int] = []
                for position in range(body_len):
                    is_backedge = position == body_len - 1
                    if is_backedge:
                        cls = BranchClass.LOOP
                        # Deterministic proportional assignment: coin flips
                        # over the handful of static loops a small workload
                        # has would make its realised backward fraction (and
                        # hence its sensitivity to the model's BP bug) a
                        # lottery.
                        self._backward_credit += profile.effective_backward_loop_frac
                        backward = self._backward_credit >= 1.0 - 1e-9
                        if backward:
                            self._backward_credit -= 1.0
                    elif self.rng.random() < p_indirect:
                        cls, backward = BranchClass.INDIRECT, False
                    else:
                        cls, backward = self._conditional_class(), False
                    body.append(self._make_block(fn_index, cls, backward))
                function.bodies.append(body)
            function.call_block = self._make_block(fn_index, BranchClass.CALL, False)
            function.return_block = self._make_block(fn_index, BranchClass.RETURN, False)
            self.functions.append(function)

    # ----------------------------------------------------------------- dynamic
    def _emit_outcome(self, block: StaticBlock, loop_taken: bool | None) -> bool:
        cls = block.branch_class
        if cls == BranchClass.LOOP:
            assert loop_taken is not None
            return loop_taken
        if cls == BranchClass.PATTERN:
            count = self._pattern_counters.get(block.index, 0)
            self._pattern_counters[block.index] = count + 1
            return block.pattern[count % len(block.pattern)]
        if cls == BranchClass.BIASED:
            return bool(self.rng.random() < self.profile.branch_bias)
        if cls == BranchClass.RANDOM:
            return bool(self.rng.random() < 0.5)
        # CALL / RETURN / INDIRECT are unconditionally taken.
        return True

    def _emit_indirect_target(self, block: StaticBlock) -> int:
        if block.branch_class != BranchClass.INDIRECT:
            return -1
        n = len(block.indirect_targets)
        # Zipf-ish skew: a dominant target with occasional switches, which a
        # real indirect predictor captures and a plain BTB partially does.
        cursor = self._indirect_cursor.get(block.index, 0)
        if self.rng.random() < 0.25:
            cursor = int(self.rng.integers(0, n))
            self._indirect_cursor[block.index] = cursor
        return cursor

    def build(self) -> SyntheticTrace:
        self._build_static()
        profile = self.profile
        rng = self.rng

        block_seq: list[int] = []
        taken_seq: list[bool] = []
        target_seq: list[int] = []
        emitted = 0
        fn_index = int(rng.integers(0, len(self.functions)))

        while emitted < self.target_instrs:
            if rng.random() > 0.7:
                fn_index = int(rng.integers(0, len(self.functions)))
            function = self.functions[fn_index]
            body_index = int(rng.integers(0, len(function.bodies)))
            body = function.bodies[body_index]
            # Trip counts are a property of the static loop (with small
            # per-visit jitter): real inner loops have stable, learnable
            # iteration counts, which is what lets the hardware predictor
            # reach its measured ~96 % accuracy.
            base_trips = self._body_trips.get((fn_index, body_index))
            if base_trips is None:
                base_trips = max(1.0, rng.exponential(profile.loop_trip_mean))
                self._body_trips[(fn_index, body_index)] = base_trips
            trips = max(1, int(round(base_trips * rng.uniform(0.85, 1.15))))
            branches_in_visit = 0
            for trip in range(trips):
                for position, block_id in enumerate(body):
                    block = self.blocks[block_id]
                    is_last = position == len(body) - 1
                    loop_taken = (trip < trips - 1) if is_last else None
                    block_seq.append(block_id)
                    taken_seq.append(self._emit_outcome(block, loop_taken))
                    target_seq.append(self._emit_indirect_target(block))
                    emitted += block.n_instrs
                    branches_in_visit += 1
                if emitted >= self.target_instrs * 1.05:
                    break
            # Call/return pairs interleaved with loop visits, at a rate that
            # makes returns the requested fraction of dynamic branches.  Each
            # pair emits three branches (call, callee block, return), of
            # which one is the return.
            if len(self.functions) > 1 and profile.return_frac > 0:
                pair_rate = profile.return_frac / max(1e-6, 1.0 - 3.0 * profile.return_frac)
                n_pairs = int(rng.poisson(pair_rate * branches_in_visit))
                for _ in range(n_pairs):
                    callee = int(rng.integers(0, len(self.functions)))
                    if callee == fn_index:
                        continue
                    caller = self.functions[fn_index]
                    callee_fn = self.functions[callee]
                    for block_id in (
                        caller.call_block,
                        callee_fn.bodies[0][0],
                        callee_fn.return_block,
                    ):
                        assert block_id is not None
                        block = self.blocks[block_id]
                        block_seq.append(block_id)
                        taken_seq.append(
                            self._emit_outcome(block, True)
                            if block.branch_class == BranchClass.LOOP
                            else True
                        )
                        target_seq.append(self._emit_indirect_target(block))
                        emitted += block.n_instrs

        return self._finalise(
            np.asarray(block_seq, dtype=np.int32),
            np.asarray(taken_seq, dtype=np.int8),
            np.asarray(target_seq, dtype=np.int16),
        )

    def _finalise(
        self,
        block_seq: np.ndarray,
        taken_seq: np.ndarray,
        target_seq: np.ndarray,
    ) -> SyntheticTrace:
        occurrences = np.bincount(block_seq, minlength=len(self.blocks))

        counts_matrix = np.asarray([b.kind_counts for b in self.blocks], dtype=np.int64)
        total_per_kind = occurrences @ counts_matrix
        totals = {name: int(total_per_kind[i]) for i, name in enumerate(KIND_NAMES)}

        class_counts: dict[BranchClass, int] = {cls: 0 for cls in BranchClass}
        for block in self.blocks:
            class_counts[block.branch_class] += int(occurrences[block.index])

        mem_addrs = self._generate_addresses(block_seq)

        return SyntheticTrace(
            name=self.profile.name,
            profile=self.profile,
            blocks=self.blocks,
            streams=self.streams,
            block_seq=block_seq,
            taken_seq=taken_seq,
            indirect_target_seq=target_seq,
            mem_addrs=mem_addrs,
            totals=totals,
            branch_class_counts=class_counts,
            n_instrs=int(total_per_kind.sum()),
            seed=self.seed,
        )

    def _generate_addresses(self, block_seq: np.ndarray) -> np.ndarray:
        """Vectorised per-stream address generation in program order."""
        stream_ids_per_block = [
            np.asarray([slot.stream for slot in b.mem_slots], dtype=np.int32)
            for b in self.blocks
        ]
        pieces = [stream_ids_per_block[b] for b in block_seq]
        if pieces:
            mem_streams = np.concatenate(pieces) if any(p.size for p in pieces) else np.empty(0, np.int32)
        else:
            mem_streams = np.empty(0, dtype=np.int32)
        mem_addrs = np.zeros(len(mem_streams), dtype=np.uint64)

        for stream in self.streams:
            mask = mem_streams == stream.index
            count = int(mask.sum())
            if count == 0:
                continue
            if stream.kind in (StreamKind.SEQ, StreamKind.STRIDE):
                offsets = (np.arange(count, dtype=np.int64) * stream.step) % max(
                    stream.span, stream.step
                )
                addrs = stream.base + offsets
            elif stream.kind == StreamKind.RAND:
                addrs = stream.base + (
                    self.rng.integers(0, max(stream.span // 4, 1), count) * 4
                )
            else:  # LOCK: a handful of contended words
                addrs = stream.base + (self.rng.integers(0, 4, count) * CACHE_LINE_BYTES)
            mem_addrs[mask] = addrs.astype(np.uint64)
        return mem_addrs


def slice_trace(trace: SyntheticTrace, start: int, end: int) -> SyntheticTrace:
    """A contiguous dynamic window ``[start, end)`` of a trace.

    The static program (blocks, streams) is shared; the dynamic sequences
    and per-kind totals are recomputed for the window.  Used by the
    run-time power analysis to evaluate power per execution window.

    Raises:
        ValueError: For an empty or out-of-range window.
    """
    n_blocks = len(trace.block_seq)
    if not 0 <= start < end <= n_blocks:
        raise ValueError(
            f"window [{start}, {end}) invalid for {n_blocks} dynamic blocks"
        )
    mem_per_block = np.asarray(
        [trace.blocks[b].n_mem for b in trace.block_seq.tolist()], dtype=np.int64
    )
    mem_offsets = np.concatenate([[0], np.cumsum(mem_per_block)])
    block_seq = trace.block_seq[start:end]

    occurrences = np.bincount(block_seq, minlength=len(trace.blocks))
    counts_matrix = np.asarray(
        [b.kind_counts for b in trace.blocks], dtype=np.int64
    )
    total_per_kind = occurrences @ counts_matrix
    totals = {name: int(total_per_kind[i]) for i, name in enumerate(KIND_NAMES)}

    class_counts: dict[BranchClass, int] = {cls: 0 for cls in BranchClass}
    for block in trace.blocks:
        if occurrences[block.index]:
            class_counts[block.branch_class] += int(occurrences[block.index])

    return SyntheticTrace(
        name=f"{trace.name}[{start}:{end}]",
        profile=trace.profile,
        blocks=trace.blocks,
        streams=trace.streams,
        block_seq=block_seq,
        taken_seq=trace.taken_seq[start:end],
        indirect_target_seq=trace.indirect_target_seq[start:end],
        mem_addrs=trace.mem_addrs[mem_offsets[start]:mem_offsets[end]],
        totals=totals,
        branch_class_counts=class_counts,
        n_instrs=int(total_per_kind.sum()),
        seed=trace.seed,
    )


def compile_trace(
    profile: WorkloadProfile,
    n_instrs: int = 60_000,
    seed: int | None = None,
) -> SyntheticTrace:
    """Compile a workload profile into a deterministic dynamic trace.

    Args:
        profile: The workload description.
        n_instrs: Approximate dynamic instruction count; the builder stops at
            the first block boundary past this target.
        seed: RNG seed; defaults to a stable hash of the workload name, so
            repeated compilations are bit-identical.

    Returns:
        The compiled :class:`SyntheticTrace`.
    """
    if n_instrs < 500:
        raise ValueError("n_instrs must be at least 500 for a meaningful trace")
    if seed is None:
        seed = workload_seed(profile.name)
    return _TraceBuilder(profile, n_instrs, seed).build()
