"""The 65-workload catalog used throughout the paper.

Section III: "A set of 65 workloads from several benchmarking suites were
used ... including MiBench, ParMiBench, LMBench, Roy Longbottom's PC
Benchmark Collection, PARSEC, Dhrystone and Whetstone.  PARSEC workloads were
run both with a single thread and four threads."

The 45-workload *validation set* (Experiment 1: MiBench, ParMiBench, PARSEC
x1/x4, Dhrystone, Whetstone) evaluates the gem5 models; the full 65-workload
*power set* additionally includes LMBench and Longbottom workloads and trains
the power models (Experiments 3 and 4).

Each profile is hand-written to mimic the published character of the real
benchmark: e.g. ``par-basicmath-rad2deg`` is a tiny, almost perfectly
predictable hot loop — the paper's pathological Cluster-16 workload whose
branch-predictor behaviour inverts between hardware and the buggy gem5 model.
"""

from __future__ import annotations

from repro.workloads.profile import WorkloadProfile


def _p(name: str, suite: str, **kwargs: object) -> WorkloadProfile:
    return WorkloadProfile(name=name, suite=suite, **kwargs)  # type: ignore[arg-type]


def _mibench() -> list[WorkloadProfile]:
    """MiBench: embedded single-threaded benchmarks (prefix ``mi-``)."""
    return [
        _p(
            "mi-qsort", "mibench",
            frac_load=0.24, frac_store=0.10, frac_branch=0.19,
            loop_branch_frac=0.30, pattern_branch_frac=0.10,
            biased_branch_frac=0.50, random_branch_frac=0.10,
            data_kb=512, frac_seq=0.50, frac_stride=0.20, frac_rand=0.30,
            code_kb=48, ilp=1.5, natural_seconds=4.0,
            description="quick sort of strings; data-dependent compares",
        ),
        _p(
            "mi-susan-smoothing", "mibench",
            frac_load=0.28, frac_store=0.12, frac_branch=0.10,
            frac_mul=0.04, loop_branch_frac=0.70, pattern_branch_frac=0.10,
            biased_branch_frac=0.15, random_branch_frac=0.05,
            loop_trip_mean=40, data_kb=768, frac_seq=0.80, frac_stride=0.15,
            frac_rand=0.05, code_kb=36, ilp=2.4, natural_seconds=6.0,
            description="image smoothing; regular nested loops over pixels",
        ),
        _p(
            "mi-susan-edges", "mibench",
            frac_load=0.26, frac_store=0.09, frac_branch=0.14,
            frac_mul=0.05, loop_branch_frac=0.55, pattern_branch_frac=0.15,
            biased_branch_frac=0.22, random_branch_frac=0.08,
            loop_trip_mean=30, data_kb=768, frac_seq=0.70, frac_stride=0.20,
            frac_rand=0.10, code_kb=40, ilp=2.2, natural_seconds=5.0,
            description="edge detection; thresholded pixel loops",
        ),
        _p(
            "mi-susan-corners", "mibench",
            frac_load=0.25, frac_store=0.08, frac_branch=0.17,
            frac_mul=0.05, loop_branch_frac=0.45, pattern_branch_frac=0.15,
            biased_branch_frac=0.32, random_branch_frac=0.08,
            loop_trip_mean=25, data_kb=768, frac_seq=0.65, frac_stride=0.20,
            frac_rand=0.15, code_kb=40, ilp=2.0, natural_seconds=4.0,
            description="corner detection; branchier thresholding",
        ),
        _p(
            "mi-jpeg-encode", "mibench",
            frac_load=0.24, frac_store=0.11, frac_branch=0.12,
            frac_mul=0.08, frac_simd=0.02, loop_branch_frac=0.60,
            pattern_branch_frac=0.15, biased_branch_frac=0.18,
            random_branch_frac=0.07, loop_trip_mean=16, data_kb=1024,
            frac_seq=0.60, frac_stride=0.30, frac_rand=0.10, code_kb=160,
            n_functions=24, ilp=2.1, natural_seconds=5.0,
            description="JPEG compression; DCT multiplies, table lookups",
        ),
        _p(
            "mi-typeset", "mibench",
            frac_load=0.25, frac_store=0.10, frac_branch=0.20,
            loop_branch_frac=0.25, pattern_branch_frac=0.12,
            biased_branch_frac=0.53, random_branch_frac=0.10,
            indirect_frac=0.06, return_frac=0.10, loop_trip_mean=6,
            data_kb=2048, frac_seq=0.50, frac_stride=0.20, frac_rand=0.30,
            code_kb=320, n_functions=48, ilp=1.3, natural_seconds=6.0,
            frac_unaligned=0.03,
            description="HTML typesetting; huge code footprint, indirect calls",
        ),
        _p(
            "mi-dijkstra", "mibench",
            frac_load=0.30, frac_store=0.08, frac_branch=0.18,
            loop_branch_frac=0.40, pattern_branch_frac=0.08,
            biased_branch_frac=0.44, random_branch_frac=0.08,
            data_kb=1536, frac_seq=0.45, frac_stride=0.20, frac_rand=0.35,
            code_kb=24, ilp=1.1, natural_seconds=5.0,
            description="shortest path; adjacency-matrix pointer chasing",
        ),
        _p(
            "mi-patricia", "mibench",
            frac_load=0.29, frac_store=0.07, frac_branch=0.21,
            loop_branch_frac=0.22, pattern_branch_frac=0.08,
            biased_branch_frac=0.60, random_branch_frac=0.10,
            return_frac=0.12, loop_trip_mean=4, data_kb=1024,
            frac_seq=0.40, frac_stride=0.20, frac_rand=0.40, code_kb=32,
            ilp=1.0, natural_seconds=4.0,
            description="Patricia trie; deep data-dependent branching",
        ),
        _p(
            "mi-stringsearch", "mibench",
            frac_load=0.27, frac_store=0.05, frac_branch=0.22,
            loop_branch_frac=0.50, pattern_branch_frac=0.25,
            biased_branch_frac=0.18, random_branch_frac=0.07,
            loop_trip_mean=20, data_kb=128, frac_seq=0.85, frac_stride=0.10,
            frac_rand=0.05, code_kb=12, ilp=1.8, natural_seconds=3.0,
            frac_unaligned=0.05,
            description="Boyer-Moore search; byte-scan loops",
        ),
        _p(
            "mi-blowfish", "mibench",
            frac_load=0.22, frac_store=0.09, frac_branch=0.08,
            loop_branch_frac=0.75, pattern_branch_frac=0.05,
            biased_branch_frac=0.15, random_branch_frac=0.05,
            loop_trip_mean=16, data_kb=20, frac_seq=0.55, frac_stride=0.15,
            frac_rand=0.30, code_kb=16, ilp=2.3, natural_seconds=5.0,
            description="Blowfish cipher; S-box lookups, unrolled rounds",
        ),
        _p(
            "mi-sha", "mibench",
            frac_load=0.18, frac_store=0.07, frac_branch=0.07,
            loop_branch_frac=0.80, pattern_branch_frac=0.05,
            biased_branch_frac=0.10, random_branch_frac=0.05,
            loop_trip_mean=20, data_kb=64, frac_seq=0.90, frac_stride=0.05,
            frac_rand=0.05, code_kb=8, ilp=2.5, natural_seconds=5.0,
            description="SHA-1 digest; rotate/xor heavy straight-line rounds",
        ),
        _p(
            "mi-crc32", "mibench",
            frac_load=0.30, frac_store=0.02, frac_branch=0.13,
            loop_branch_frac=0.90, pattern_branch_frac=0.02,
            biased_branch_frac=0.05, random_branch_frac=0.03,
            loop_trip_mean=120, data_kb=256, frac_seq=0.85, frac_stride=0.05,
            frac_rand=0.10, code_kb=4, n_functions=2, ilp=1.9,
            natural_seconds=4.0,
            description="CRC32; tiny table-lookup loop over a buffer",
        ),
        _p(
            "mi-fft", "mibench",
            frac_load=0.24, frac_store=0.12, frac_branch=0.11,
            frac_fp=0.22, frac_mul=0.03, loop_branch_frac=0.65,
            pattern_branch_frac=0.12, biased_branch_frac=0.15,
            random_branch_frac=0.08, loop_trip_mean=24, data_kb=512,
            frac_seq=0.40, frac_stride=0.50, frac_rand=0.10, stride_b=128,
            code_kb=20, ilp=1.9, natural_seconds=5.0,
            description="radix-2 FFT; butterfly strides, VFP multiplies",
        ),
        _p(
            "mi-basicmath", "mibench",
            frac_load=0.14, frac_store=0.06, frac_branch=0.14,
            frac_fp=0.24, frac_div=0.03, loop_branch_frac=0.70,
            pattern_branch_frac=0.08, biased_branch_frac=0.15,
            random_branch_frac=0.07, loop_trip_mean=50, data_kb=32,
            frac_seq=0.80, frac_stride=0.10, frac_rand=0.10, code_kb=16,
            ilp=1.4, natural_seconds=5.0,
            description="cubic solver / angle conversions; VFP with divides",
        ),
        _p(
            "mi-bitcount", "mibench",
            frac_load=0.08, frac_store=0.02, frac_branch=0.16,
            loop_branch_frac=0.85, pattern_branch_frac=0.04,
            biased_branch_frac=0.07, random_branch_frac=0.04,
            loop_trip_mean=80, data_kb=8, frac_seq=0.70, frac_stride=0.10,
            frac_rand=0.20, code_kb=6, n_functions=4, ilp=2.0,
            natural_seconds=4.0,
            backward_loop_frac=0.45,
            description="bit-count kernels; tight counted loops",
        ),
    ]


def _parmibench() -> list[WorkloadProfile]:
    """ParMiBench: parallel MiBench ports, 4 threads (prefix ``par-``)."""
    sync = dict(frac_ldrex=0.010, frac_strex=0.010, frac_barrier=0.007, threads=4)
    return [
        _p(
            "par-basicmath-rad2deg", "parmibench",
            frac_load=0.10, frac_store=0.04, frac_branch=0.12,
            frac_fp=0.20, loop_branch_frac=0.93, pattern_branch_frac=0.02,
            biased_branch_frac=0.03, random_branch_frac=0.02,
            loop_trip_mean=400, data_kb=8, frac_seq=0.90, frac_stride=0.05,
            frac_rand=0.05, code_kb=4, n_functions=2, backward_loop_frac=1.0, ilp=1.05,
            natural_seconds=4.0, threads=4,
            description="radian-to-degree loop; ~perfectly predictable branches",
        ),
        _p(
            "par-basicmath-deg2rad", "parmibench",
            frac_load=0.10, frac_store=0.04, frac_branch=0.13,
            frac_fp=0.21, loop_branch_frac=0.90, pattern_branch_frac=0.03,
            biased_branch_frac=0.04, random_branch_frac=0.03,
            loop_trip_mean=300, data_kb=8, frac_seq=0.90, frac_stride=0.05,
            frac_rand=0.05, code_kb=4, n_functions=2, backward_loop_frac=0.85, ilp=1.05,
            natural_seconds=4.0, threads=4,
            description="degree-to-radian loop; sibling of rad2deg",
        ),
        _p(
            "par-basicmath-cubic", "parmibench",
            frac_load=0.13, frac_store=0.05, frac_branch=0.15,
            frac_fp=0.25, frac_div=0.04, loop_branch_frac=0.65,
            pattern_branch_frac=0.08, biased_branch_frac=0.18,
            random_branch_frac=0.09, loop_trip_mean=30, data_kb=16,
            frac_seq=0.85, frac_stride=0.05, frac_rand=0.10, code_kb=12,
            ilp=1.3, natural_seconds=5.0, threads=4,
            description="cubic equation solver; VFP divides",
        ),
        _p(
            "par-bitcount", "parmibench",
            frac_load=0.08, frac_store=0.02, frac_branch=0.17,
            loop_branch_frac=0.84, pattern_branch_frac=0.04,
            biased_branch_frac=0.08, random_branch_frac=0.04,
            loop_trip_mean=70, data_kb=16, frac_seq=0.70, frac_stride=0.10,
            frac_rand=0.20, code_kb=8, n_functions=4, ilp=2.0,
            natural_seconds=4.0, **sync,
            backward_loop_frac=0.45,
            description="parallel bit counting; partitioned tight loops",
        ),
        _p(
            "par-susan-smoothing", "parmibench",
            frac_load=0.27, frac_store=0.11, frac_branch=0.10,
            frac_mul=0.04, loop_branch_frac=0.68, pattern_branch_frac=0.10,
            biased_branch_frac=0.16, random_branch_frac=0.06,
            loop_trip_mean=40, data_kb=1024, frac_seq=0.78, frac_stride=0.15,
            frac_rand=0.07, code_kb=40, ilp=2.3, natural_seconds=6.0, **sync,
            description="parallel image smoothing; row-partitioned loops",
        ),
        _p(
            "par-susan-edges", "parmibench",
            frac_load=0.25, frac_store=0.09, frac_branch=0.14,
            frac_mul=0.05, loop_branch_frac=0.52, pattern_branch_frac=0.15,
            biased_branch_frac=0.23, random_branch_frac=0.10,
            loop_trip_mean=28, data_kb=1024, frac_seq=0.70, frac_stride=0.18,
            frac_rand=0.12, code_kb=44, ilp=2.1, natural_seconds=5.0, **sync,
            description="parallel edge detection",
        ),
        _p(
            "par-dijkstra", "parmibench",
            frac_load=0.29, frac_store=0.08, frac_branch=0.18,
            loop_branch_frac=0.38, pattern_branch_frac=0.08,
            biased_branch_frac=0.46, random_branch_frac=0.08,
            data_kb=2048, frac_seq=0.45, frac_stride=0.20, frac_rand=0.35,
            code_kb=28, ilp=1.1, natural_seconds=6.0, **sync,
            description="parallel shortest path; shared graph, locks",
        ),
        _p(
            "par-patricia", "parmibench",
            frac_load=0.28, frac_store=0.08, frac_branch=0.20,
            loop_branch_frac=0.22, pattern_branch_frac=0.08,
            biased_branch_frac=0.60, random_branch_frac=0.10,
            return_frac=0.12, loop_trip_mean=4, data_kb=1536,
            frac_seq=0.40, frac_stride=0.20, frac_rand=0.40, code_kb=36,
            frac_ldrex=0.012, frac_strex=0.012, frac_barrier=0.008,
            threads=4, ilp=1.0, natural_seconds=5.0,
            description="parallel trie under a lock; highest sync rate",
        ),
        _p(
            "par-sha", "parmibench",
            frac_load=0.18, frac_store=0.07, frac_branch=0.07,
            loop_branch_frac=0.78, pattern_branch_frac=0.06,
            biased_branch_frac=0.11, random_branch_frac=0.05,
            loop_trip_mean=20, data_kb=256, frac_seq=0.90, frac_stride=0.05,
            frac_rand=0.05, code_kb=10, ilp=2.5, natural_seconds=5.0, **sync,
            description="parallel SHA over independent chunks",
        ),
        _p(
            "par-stringsearch", "parmibench",
            frac_load=0.26, frac_store=0.05, frac_branch=0.21,
            loop_branch_frac=0.48, pattern_branch_frac=0.25,
            biased_branch_frac=0.19, random_branch_frac=0.08,
            loop_trip_mean=18, data_kb=512, frac_seq=0.85, frac_stride=0.10,
            frac_rand=0.05, code_kb=14, ilp=1.8, natural_seconds=4.0, **sync,
            frac_unaligned=0.05,
            description="parallel string search over partitioned text",
        ),
    ]


def _parsec_base() -> list[WorkloadProfile]:
    """PARSEC single-thread baselines (prefix ``parsec-``, suffixed ``-1``)."""
    return [
        _p(
            "parsec-blackscholes-1", "parsec",
            frac_load=0.20, frac_store=0.07, frac_branch=0.08,
            frac_fp=0.30, frac_div=0.02, loop_branch_frac=0.75,
            pattern_branch_frac=0.05, biased_branch_frac=0.15,
            random_branch_frac=0.05, loop_trip_mean=60, data_kb=512,
            frac_seq=0.85, frac_stride=0.10, frac_rand=0.05, code_kb=24,
            ilp=2.6, natural_seconds=6.0,
            description="option pricing; dense VFP arithmetic, regular loops",
        ),
        _p(
            "parsec-bodytrack-1", "parsec",
            frac_load=0.24, frac_store=0.09, frac_branch=0.15,
            frac_fp=0.18, loop_branch_frac=0.45, pattern_branch_frac=0.12,
            biased_branch_frac=0.35, random_branch_frac=0.08,
            loop_trip_mean=15, data_kb=3072, frac_seq=0.55, frac_stride=0.25,
            frac_rand=0.20, code_kb=220, n_functions=36, ilp=1.7,
            natural_seconds=7.0,
            description="body tracking; FP with data-dependent control",
        ),
        _p(
            "parsec-canneal-1", "parsec",
            frac_load=0.31, frac_store=0.09, frac_branch=0.16,
            loop_branch_frac=0.30, pattern_branch_frac=0.05,
            biased_branch_frac=0.55, random_branch_frac=0.10,
            loop_trip_mean=8, data_kb=6144, frac_seq=0.40, frac_stride=0.20,
            frac_rand=0.40, code_kb=96, n_functions=16, ilp=0.9,
            natural_seconds=8.0,
            description="simulated annealing; giant random working set",
        ),
        _p(
            "parsec-dedup-1", "parsec",
            frac_load=0.26, frac_store=0.12, frac_branch=0.14,
            frac_mul=0.03, loop_branch_frac=0.50, pattern_branch_frac=0.08,
            biased_branch_frac=0.34, random_branch_frac=0.08,
            loop_trip_mean=24, data_kb=6144, frac_seq=0.65, frac_stride=0.10,
            frac_rand=0.25, code_kb=180, n_functions=28, ilp=1.6,
            natural_seconds=6.0,
            frac_unaligned=0.04,
            description="dedup pipeline; hashing over streams, hash tables",
        ),
        _p(
            "parsec-ferret-1", "parsec",
            frac_load=0.25, frac_store=0.09, frac_branch=0.16,
            frac_fp=0.10, loop_branch_frac=0.38, pattern_branch_frac=0.10,
            biased_branch_frac=0.44, random_branch_frac=0.08,
            indirect_frac=0.04, return_frac=0.09, loop_trip_mean=10,
            data_kb=4096, frac_seq=0.50, frac_stride=0.20, frac_rand=0.30,
            code_kb=300, n_functions=48, ilp=1.4, natural_seconds=8.0,
            description="image similarity search; large code, mixed control",
        ),
        _p(
            "parsec-fluidanimate-1", "parsec",
            frac_load=0.26, frac_store=0.11, frac_branch=0.11,
            frac_fp=0.22, loop_branch_frac=0.60, pattern_branch_frac=0.08,
            biased_branch_frac=0.22, random_branch_frac=0.10,
            loop_trip_mean=20, data_kb=4096, frac_seq=0.40, frac_stride=0.45,
            frac_rand=0.15, stride_b=96, code_kb=56, ilp=1.9,
            natural_seconds=7.0,
            description="SPH fluid simulation; strided particle grids",
        ),
        _p(
            "parsec-freqmine-1", "parsec",
            frac_load=0.28, frac_store=0.08, frac_branch=0.19,
            loop_branch_frac=0.32, pattern_branch_frac=0.08,
            biased_branch_frac=0.50, random_branch_frac=0.10,
            return_frac=0.10, loop_trip_mean=7, data_kb=8192,
            frac_seq=0.50, frac_stride=0.15, frac_rand=0.35, code_kb=140,
            n_functions=24, ilp=1.2, natural_seconds=8.0,
            description="frequent itemset mining; FP-tree pointer chasing",
        ),
        _p(
            "parsec-streamcluster-1", "parsec",
            frac_load=0.29, frac_store=0.07, frac_branch=0.10,
            frac_fp=0.20, loop_branch_frac=0.70, pattern_branch_frac=0.05,
            biased_branch_frac=0.18, random_branch_frac=0.07,
            loop_trip_mean=50, data_kb=8192, frac_seq=0.85, frac_stride=0.10,
            frac_rand=0.05, code_kb=28, ilp=1.8, natural_seconds=8.0,
            description="online clustering; streaming distance computations",
        ),
        _p(
            "parsec-swaptions-1", "parsec",
            frac_load=0.19, frac_store=0.08, frac_branch=0.09,
            frac_fp=0.28, frac_div=0.01, loop_branch_frac=0.70,
            pattern_branch_frac=0.06, biased_branch_frac=0.17,
            random_branch_frac=0.07, loop_trip_mean=35, data_kb=256,
            frac_seq=0.75, frac_stride=0.20, frac_rand=0.05, code_kb=32,
            ilp=2.4, natural_seconds=6.0,
            description="HJM swaption pricing; Monte-Carlo VFP kernels",
        ),
    ]


def _parsec() -> list[WorkloadProfile]:
    """PARSEC run with one and with four threads, as in the paper."""
    singles = _parsec_base()
    return singles + [p.with_threads(4) for p in singles]


def _classic() -> list[WorkloadProfile]:
    """Dhrystone and Whetstone (suite ``classic``)."""
    return [
        _p(
            "dhrystone", "classic",
            frac_load=0.20, frac_store=0.10, frac_branch=0.17,
            loop_branch_frac=0.55, pattern_branch_frac=0.10,
            biased_branch_frac=0.30, random_branch_frac=0.05,
            return_frac=0.10, loop_trip_mean=12, data_kb=12,
            frac_seq=0.70, frac_stride=0.10, frac_rand=0.20, code_kb=10,
            n_functions=8, ilp=2.2, natural_seconds=4.0,
            description="Dhrystone 2.1; tiny footprint, predictable integer",
        ),
        _p(
            "whetstone", "classic",
            frac_load=0.15, frac_store=0.06, frac_branch=0.10,
            frac_fp=0.34, frac_div=0.03, loop_branch_frac=0.80,
            pattern_branch_frac=0.04, biased_branch_frac=0.11,
            random_branch_frac=0.05, loop_trip_mean=100, data_kb=8,
            frac_seq=0.85, frac_stride=0.10, frac_rand=0.05, code_kb=8,
            n_functions=6, ilp=1.5, natural_seconds=4.0,
            backward_loop_frac=0.60,
            description="Whetstone; VFP-saturated counted loops",
        ),
    ]


def _lmbench() -> list[WorkloadProfile]:
    """LMBench micro-workloads (prefix ``lm-``); power set only."""
    chase = dict(
        frac_load=0.40, frac_store=0.02, frac_branch=0.12,
        loop_branch_frac=0.88, pattern_branch_frac=0.02,
        biased_branch_frac=0.06, random_branch_frac=0.04,
        loop_trip_mean=200, frac_seq=0.02, frac_stride=0.03, frac_rand=0.95,
        code_kb=4, n_functions=2, ilp=1.0, natural_seconds=4.0,
    )
    stream = dict(
        frac_branch=0.08, loop_branch_frac=0.92, pattern_branch_frac=0.02,
        biased_branch_frac=0.04, random_branch_frac=0.02,
        loop_trip_mean=300, frac_seq=0.97, frac_stride=0.02, frac_rand=0.01,
        code_kb=4, n_functions=2, natural_seconds=4.0,
    )
    return [
        _p("lm-lat-mem-l1", "lmbench", data_kb=16, **chase,
           description="lat_mem_rd inside L1D"),
        _p("lm-lat-mem-l2", "lmbench", data_kb=1024, **chase,
           description="lat_mem_rd inside L2"),
        _p("lm-lat-mem-dram", "lmbench", data_kb=16384, **chase,
           description="lat_mem_rd well past L2 (DRAM)"),
        _p("lm-bw-mem-rd", "lmbench", frac_load=0.45, frac_store=0.02,
           data_kb=8192, ilp=2.2, **stream, description="streaming read bandwidth"),
        _p("lm-bw-mem-wr", "lmbench", frac_load=0.05, frac_store=0.42,
           data_kb=8192, ilp=2.2, **stream, description="streaming write bandwidth"),
        _p("lm-bw-mem-cp", "lmbench", frac_load=0.25, frac_store=0.25,
           data_kb=8192, ilp=2.0, **stream, description="streaming copy bandwidth"),
        _p(
            "lm-ops-int", "lmbench",
            frac_load=0.04, frac_store=0.02, frac_branch=0.10,
            loop_branch_frac=0.92, pattern_branch_frac=0.02,
            biased_branch_frac=0.04, random_branch_frac=0.02,
            loop_trip_mean=500, data_kb=4, frac_seq=0.90, frac_stride=0.05,
            frac_rand=0.05, code_kb=4, n_functions=2, ilp=1.0,
            natural_seconds=3.0, description="integer op-latency chain",
        ),
        _p(
            "lm-ops-fp", "lmbench",
            frac_load=0.04, frac_store=0.02, frac_branch=0.10, frac_fp=0.55,
            loop_branch_frac=0.92, pattern_branch_frac=0.02,
            biased_branch_frac=0.04, random_branch_frac=0.02,
            loop_trip_mean=500, data_kb=4, frac_seq=0.90, frac_stride=0.05,
            frac_rand=0.05, code_kb=4, n_functions=2, ilp=1.0,
            natural_seconds=3.0, description="VFP op-latency chain",
        ),
        _p(
            "lm-ops-div", "lmbench",
            frac_load=0.04, frac_store=0.02, frac_branch=0.10, frac_div=0.20,
            loop_branch_frac=0.92, pattern_branch_frac=0.02,
            biased_branch_frac=0.04, random_branch_frac=0.02,
            loop_trip_mean=500, data_kb=4, frac_seq=0.90, frac_stride=0.05,
            frac_rand=0.05, code_kb=4, n_functions=2, ilp=0.6,
            natural_seconds=3.0, description="integer divide latency chain",
        ),
        _p(
            "lm-stride-128", "lmbench",
            frac_load=0.38, frac_store=0.02, frac_branch=0.10,
            loop_branch_frac=0.90, pattern_branch_frac=0.02,
            biased_branch_frac=0.05, random_branch_frac=0.03,
            loop_trip_mean=250, data_kb=4096, frac_seq=0.05, frac_stride=0.90,
            frac_rand=0.05, stride_b=128, code_kb=4, n_functions=2, ilp=1.4,
            natural_seconds=4.0, description="fixed 128 B stride sweep",
        ),
    ]


def _longbottom() -> list[WorkloadProfile]:
    """Roy Longbottom's PC benchmark collection (prefix ``rl-``)."""
    return [
        _p(
            "rl-linpack", "longbottom",
            frac_load=0.26, frac_store=0.10, frac_branch=0.09,
            frac_fp=0.26, frac_mul=0.02, loop_branch_frac=0.80,
            pattern_branch_frac=0.04, biased_branch_frac=0.11,
            random_branch_frac=0.05, loop_trip_mean=90, data_kb=2048,
            frac_seq=0.70, frac_stride=0.25, frac_rand=0.05, code_kb=12,
            ilp=2.2, natural_seconds=6.0, description="LINPACK DGEFA/DAXPY",
        ),
        _p(
            "rl-livermore", "longbottom",
            frac_load=0.25, frac_store=0.10, frac_branch=0.10,
            frac_fp=0.24, loop_branch_frac=0.78, pattern_branch_frac=0.06,
            biased_branch_frac=0.10, random_branch_frac=0.06,
            loop_trip_mean=60, data_kb=1024, frac_seq=0.55, frac_stride=0.35,
            frac_rand=0.10, code_kb=32, ilp=1.9, natural_seconds=6.0,
            description="Livermore loops; mixed-stride FP kernels",
        ),
        _p(
            "rl-memspeed", "longbottom",
            frac_load=0.30, frac_store=0.15, frac_branch=0.08,
            loop_branch_frac=0.90, pattern_branch_frac=0.02,
            biased_branch_frac=0.05, random_branch_frac=0.03,
            loop_trip_mean=300, data_kb=12288, frac_seq=0.95,
            frac_stride=0.04, frac_rand=0.01, code_kb=4, n_functions=2,
            ilp=2.0, natural_seconds=5.0, description="MemSpeed streaming",
        ),
        _p(
            "rl-busspeed", "longbottom",
            frac_load=0.38, frac_store=0.04, frac_branch=0.08,
            loop_branch_frac=0.90, pattern_branch_frac=0.02,
            biased_branch_frac=0.05, random_branch_frac=0.03,
            loop_trip_mean=300, data_kb=16384, frac_seq=0.90,
            frac_stride=0.08, frac_rand=0.02, code_kb=4, n_functions=2,
            ilp=1.6, natural_seconds=5.0, description="BusSpeed burst reads",
        ),
        _p(
            "rl-randmem", "longbottom",
            frac_load=0.34, frac_store=0.08, frac_branch=0.12,
            loop_branch_frac=0.75, pattern_branch_frac=0.04,
            biased_branch_frac=0.13, random_branch_frac=0.08,
            loop_trip_mean=100, data_kb=16384, frac_seq=0.05,
            frac_stride=0.05, frac_rand=0.90, code_kb=6, n_functions=2,
            ilp=1.0, natural_seconds=6.0, description="RandMem random access",
        ),
        _p(
            "rl-nnet", "longbottom",
            frac_load=0.24, frac_store=0.09, frac_branch=0.12,
            frac_fp=0.22, loop_branch_frac=0.62, pattern_branch_frac=0.14,
            biased_branch_frac=0.16, random_branch_frac=0.08,
            loop_trip_mean=25, data_kb=512, frac_seq=0.60, frac_stride=0.30,
            frac_rand=0.10, code_kb=20, ilp=1.8, natural_seconds=6.0,
            description="neural-net benchmark; dot-product layers",
        ),
        _p(
            "rl-int-arith", "longbottom",
            frac_load=0.08, frac_store=0.03, frac_branch=0.10,
            frac_mul=0.06, loop_branch_frac=0.88, pattern_branch_frac=0.03,
            biased_branch_frac=0.06, random_branch_frac=0.03,
            loop_trip_mean=200, data_kb=8, frac_seq=0.85, frac_stride=0.10,
            frac_rand=0.05, code_kb=8, n_functions=4, ilp=2.4,
            natural_seconds=4.0, description="integer arithmetic sweep",
        ),
        _p(
            "rl-fp-arith", "longbottom",
            frac_load=0.08, frac_store=0.03, frac_branch=0.09,
            frac_fp=0.40, loop_branch_frac=0.88, pattern_branch_frac=0.03,
            biased_branch_frac=0.06, random_branch_frac=0.03,
            loop_trip_mean=200, data_kb=8, frac_seq=0.85, frac_stride=0.10,
            frac_rand=0.05, code_kb=8, n_functions=4, ilp=2.0,
            natural_seconds=4.0, description="VFP arithmetic sweep",
        ),
        _p(
            "rl-mp-flops", "longbottom",
            frac_load=0.10, frac_store=0.04, frac_branch=0.08,
            frac_simd=0.38, loop_branch_frac=0.90, pattern_branch_frac=0.02,
            biased_branch_frac=0.05, random_branch_frac=0.03,
            loop_trip_mean=250, data_kb=64, frac_seq=0.90, frac_stride=0.05,
            frac_rand=0.05, code_kb=8, n_functions=4, ilp=2.6,
            natural_seconds=4.0, description="NEON peak-FLOPS kernels",
        ),
        _p(
            "rl-cache-probe", "longbottom",
            frac_load=0.36, frac_store=0.04, frac_branch=0.11,
            loop_branch_frac=0.85, pattern_branch_frac=0.03,
            biased_branch_frac=0.08, random_branch_frac=0.04,
            loop_trip_mean=150, data_kb=3072, frac_seq=0.20, frac_stride=0.70,
            frac_rand=0.10, stride_b=256, code_kb=6, n_functions=2, ilp=1.3,
            natural_seconds=5.0, description="stride-256 cache probing",
        ),
    ]


def validation_workloads() -> list[WorkloadProfile]:
    """The 45-workload set of Experiment 1 (gem5 model validation)."""
    return _mibench() + _parmibench() + _parsec() + _classic()


def power_modelling_workloads() -> list[WorkloadProfile]:
    """The full 65-workload set used to build the power models."""
    return validation_workloads() + _lmbench() + _longbottom()


def all_workloads() -> list[WorkloadProfile]:
    """Alias for the full 65-workload catalog."""
    return power_modelling_workloads()


#: Name lists for quick membership checks.
VALIDATION_SET: tuple[str, ...] = tuple(p.name for p in validation_workloads())
POWER_SET: tuple[str, ...] = tuple(p.name for p in power_modelling_workloads())

_BY_NAME: dict[str, WorkloadProfile] = {p.name: p for p in power_modelling_workloads()}


def workload_by_name(name: str) -> WorkloadProfile:
    """Look up a workload profile by its catalog name.

    Raises:
        KeyError: If the name is not in the 65-workload catalog.
    """
    return _BY_NAME[name]
