"""lmbench-style micro-benchmarks (Section IV-A, Fig. 4).

``lat_mem_rd``-equivalent: a dependent pointer chase over an array of a given
size with a fixed stride; the measured ns-per-access curve steps at each
level of the memory hierarchy.  Run against both machine configurations it
reads out the paper's Fig. 4 findings directly: the model's DRAM latency is
too low and the gem5 Cortex-A7 L2 latency too high, while the L1 regions
match.

Because a pointer chase is a single dependency chain, no memory-level
parallelism applies; the probe therefore runs the machine with its overlap
factors disabled, exactly as the real micro-benchmark defeats the hardware's
MLP by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.sim.cpu import simulate
from repro.sim.machine import MachineConfig
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import compile_trace

#: Default probe sizes (KiB), log-spaced through the hierarchy.
DEFAULT_SIZES_KB: tuple[int, ...] = (
    4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
)


@dataclass(frozen=True)
class LatencyPoint:
    """One point of the lat_mem_rd curve."""

    size_kb: int
    ns_per_access: float


def _chase_profile(size_kb: int, stride_b: int) -> WorkloadProfile:
    return WorkloadProfile(
        name=f"lat-mem-{size_kb}k-s{stride_b}",
        suite="microbench",
        frac_load=0.45,
        frac_store=0.01,
        frac_branch=0.10,
        loop_branch_frac=0.90,
        pattern_branch_frac=0.02,
        biased_branch_frac=0.05,
        random_branch_frac=0.03,
        loop_trip_mean=300,
        n_functions=1,
        code_kb=4,
        data_kb=float(size_kb),
        frac_seq=0.01,
        frac_stride=0.01,
        stride_b=stride_b,
        frac_rand=0.98,
        ilp=1.0,
        natural_seconds=1.0,
    )


def _chain_machine(machine: MachineConfig) -> MachineConfig:
    """The machine as a dependent chain sees it: zero overlap."""
    return dc_replace(
        machine, mem_overlap=0.0, dram_overlap=0.0, store_miss_exposure=1.0
    )


def memory_latency_sweep(
    machine: MachineConfig,
    freq_hz: float = 1.0e9,
    sizes_kb: tuple[int, ...] = DEFAULT_SIZES_KB,
    stride_b: int = 256,
    n_instrs: int = 40_000,
) -> list[LatencyPoint]:
    """lat_mem_rd: average load latency vs array size (Fig. 4).

    Args:
        machine: Machine configuration to probe.
        freq_hz: Core frequency during the probe.
        sizes_kb: Array sizes to sweep.
        stride_b: Chase stride in bytes (the paper plots stride 256).
        n_instrs: Probe trace length.

    Returns:
        One :class:`LatencyPoint` per size, in sweep order.
    """
    probe_machine = _chain_machine(machine)
    points = []
    for size_kb in sizes_kb:
        trace = compile_trace(_chase_profile(size_kb, stride_b), n_instrs)
        result = simulate(trace, probe_machine)
        # Attribute all memory-related stall time to the loads; the base
        # pipeline cost per access is the in-cache (L1) latency floor.
        loads = result.counts["inst_load"]
        mem_components = (
            result.components["dcache"]
            + result.components["dtlb"]
            + result.components["load_use"]
        )
        dram_seconds = (
            result.dram_stall_weight * probe_machine.dram_latency_ns * 1e-9
        )
        l1_floor_cycles = loads * machine.l1d.latency
        seconds = (mem_components + l1_floor_cycles) / freq_hz + dram_seconds
        points.append(
            LatencyPoint(size_kb=size_kb, ns_per_access=seconds / loads * 1e9)
        )
    return points


def op_latency_table(machine: MachineConfig) -> dict[str, float]:
    """Exposed operation latencies in cycles (the lmbench ops probes)."""
    return {
        "int_add": 1.0,
        "int_mul": 1.0 + machine.mul_penalty,
        "int_div": 1.0 + machine.div_penalty,
        "fp_add": 1.0 + machine.fp_penalty,
        "simd": 1.0 + machine.simd_penalty,
        "load_l1": float(machine.l1d.latency),
        "load_l2": float(machine.l1d.latency + machine.l2.latency),
    }


def memory_bandwidth(
    machine: MachineConfig,
    freq_hz: float = 1.0e9,
    size_kb: int = 8192,
    n_instrs: int = 40_000,
) -> float:
    """Streaming read bandwidth in bytes/second (bw_mem equivalent)."""
    profile = WorkloadProfile(
        name=f"bw-mem-{size_kb}k",
        suite="microbench",
        frac_load=0.50,
        frac_store=0.02,
        frac_branch=0.08,
        loop_branch_frac=0.92,
        pattern_branch_frac=0.02,
        biased_branch_frac=0.04,
        random_branch_frac=0.02,
        loop_trip_mean=400,
        n_functions=1,
        code_kb=4,
        data_kb=float(size_kb),
        frac_seq=0.98,
        frac_stride=0.01,
        frac_rand=0.01,
        ilp=2.2,
        natural_seconds=1.0,
    )
    trace = compile_trace(profile, n_instrs)
    result = simulate(trace, machine)
    seconds = result.time_seconds(freq_hz)
    bytes_read = result.counts["inst_load"] * 8.0  # 64-bit stream loads
    return bytes_read / seconds
