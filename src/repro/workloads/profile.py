"""Workload profiles: the statistical description of a benchmark program.

A profile captures the program-level axes that drive every analysis in the
paper: instruction mix (loads, stores, branches, integer, VFP, NEON,
exclusive/barrier operations), branch population behaviour, code and data
footprints, data locality, unaligned-access rate, and intrinsic ILP.  The
trace compiler (:mod:`repro.workloads.trace`) turns a profile into a concrete
deterministic instruction trace.

Profiles are *machine independent* — the same trace runs on the reference
hardware platform and on the gem5-style model, which is what makes
model-vs-hardware comparison meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one benchmark workload.

    Instruction-mix fields are fractions of all dynamic instructions and must
    sum to at most 1; the remainder is plain integer ALU work.  Branch-class
    fields are fractions of dynamic *conditional* branches and must sum to 1.

    Attributes:
        name: Unique workload name, prefixed by suite (``mi-``, ``par-``,
            ``parsec-``, ``lm-``, ``rl-``) following the paper's Fig. 3.
        suite: Suite identifier (``mibench``, ``parmibench``, ``parsec``,
            ``lmbench``, ``longbottom``, ``classic``).
        threads: Thread count; PARSEC workloads run with 1 and 4 threads.
        frac_load / frac_store: Data-access mix.
        frac_branch: Dynamic branch fraction (conditional + indirect + calls
            + returns).
        frac_mul / frac_div: Long-latency integer operations.
        frac_fp: VFP scalar floating-point operations.
        frac_simd: NEON/Advanced-SIMD operations.
        frac_ldrex / frac_strex: Exclusive load/store rate (synchronisation).
        frac_barrier: DMB data-memory-barrier rate.
        loop_branch_frac: Fraction of dynamic conditional branches that are
            loop back-edges (taken for ``loop_trip_mean - 1`` of every
            ``loop_trip_mean`` executions).
        pattern_branch_frac: Branches following a short periodic pattern —
            predictable with history, unpredictable without.
        biased_branch_frac: Bernoulli branches taken with ``branch_bias``.
        random_branch_frac: Bernoulli(0.5) branches (data-dependent).
        branch_bias: Taken probability of biased branches.
        pattern_period: Period of patterned branches.
        indirect_frac: Fraction of dynamic branches that are indirect jumps
            (switch tables, virtual calls).
        return_frac: Fraction of dynamic branches that are procedure returns.
        loop_trip_mean: Mean iteration count of inner loops.
        n_functions: Distinct hot functions; spreads code across pages.
        code_kb: Hot code footprint in KiB (drives L1I/ITLB behaviour).
        data_kb: Hot data footprint in KiB (drives L1D/L2/DRAM behaviour).
        frac_seq / frac_stride / frac_rand: Data-locality mixture of memory
            references: sequential streaming, fixed-stride, uniform-random
            within the data footprint.  Must sum to 1.
        stride_b: Stride in bytes for the strided stream.
        frac_unaligned: Fraction of memory accesses that are unaligned.
        ilp: Dependency-limited sustainable ops/cycle on an ideal wide
            out-of-order core (the trace's intrinsic parallelism).
        natural_seconds: Approximate single-run duration on the reference
            platform at 1 GHz; the platform repeats runs to fill the ≥30 s
            power-measurement window exactly as the paper does.
        description: One-line description of the real benchmark mimicked.
    """

    name: str
    suite: str
    threads: int = 1
    frac_load: float = 0.20
    frac_store: float = 0.08
    frac_branch: float = 0.16
    frac_mul: float = 0.01
    frac_div: float = 0.0
    frac_fp: float = 0.0
    frac_simd: float = 0.0
    frac_ldrex: float = 0.0
    frac_strex: float = 0.0
    frac_barrier: float = 0.0
    loop_branch_frac: float = 0.45
    pattern_branch_frac: float = 0.15
    biased_branch_frac: float = 0.30
    random_branch_frac: float = 0.10
    branch_bias: float = 0.93
    pattern_period: int = 4
    indirect_frac: float = 0.02
    return_frac: float = 0.06
    loop_trip_mean: float = 12.0
    n_functions: int = 12
    code_kb: float = 96.0
    data_kb: float = 256.0
    frac_seq: float = 0.50
    frac_stride: float = 0.25
    stride_b: int = 64
    frac_rand: float = 0.25
    frac_unaligned: float = 0.0
    backward_loop_frac: float | None = None
    ilp: float = 1.8
    natural_seconds: float = 6.0
    description: str = ""

    def __post_init__(self) -> None:
        mix = self.instruction_mix_sum()
        if not 0.0 < mix <= 1.0:
            raise ValueError(
                f"{self.name}: instruction mix sums to {mix:.3f}; must be in (0, 1]"
            )
        branch_classes = (
            self.loop_branch_frac
            + self.pattern_branch_frac
            + self.biased_branch_frac
            + self.random_branch_frac
        )
        if abs(branch_classes - 1.0) > 1e-6:
            raise ValueError(
                f"{self.name}: conditional-branch classes sum to "
                f"{branch_classes:.3f}; must sum to 1"
            )
        locality = self.frac_seq + self.frac_stride + self.frac_rand
        if abs(locality - 1.0) > 1e-6:
            raise ValueError(
                f"{self.name}: locality fractions sum to {locality:.3f}; must sum to 1"
            )
        if self.indirect_frac + self.return_frac > 0.8:
            raise ValueError(f"{self.name}: indirect+return branches exceed 0.8")
        for bounded in ("branch_bias", "frac_unaligned"):
            value = getattr(self, bounded)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {bounded}={value} outside [0, 1]")
        if self.threads < 1:
            raise ValueError(f"{self.name}: threads must be >= 1")
        if self.loop_trip_mean < 2:
            raise ValueError(f"{self.name}: loop_trip_mean must be >= 2")
        if self.ilp <= 0:
            raise ValueError(f"{self.name}: ilp must be positive")
        if self.code_kb <= 0 or self.data_kb <= 0:
            raise ValueError(f"{self.name}: footprints must be positive")
        if self.backward_loop_frac is not None and not 0.0 <= self.backward_loop_frac <= 1.0:
            raise ValueError(f"{self.name}: backward_loop_frac outside [0, 1]")

    def instruction_mix_sum(self) -> float:
        """Sum of all explicit instruction-mix fractions (rest is int ALU)."""
        return (
            self.frac_load
            + self.frac_store
            + self.frac_branch
            + self.frac_mul
            + self.frac_div
            + self.frac_fp
            + self.frac_simd
            + self.frac_ldrex
            + self.frac_strex
            + self.frac_barrier
        )

    @property
    def frac_int_alu(self) -> float:
        """Implied plain integer-ALU fraction."""
        return 1.0 - self.instruction_mix_sum()

    @property
    def frac_mem(self) -> float:
        """Total data-memory-access fraction (loads + stores + exclusives)."""
        return self.frac_load + self.frac_store + self.frac_ldrex + self.frac_strex

    @property
    def code_pages(self) -> int:
        """Hot code footprint in 4 KiB pages (at least 1)."""
        return max(1, round(self.code_kb / 4.0))

    @property
    def effective_backward_loop_frac(self) -> float:
        """Fraction of loop back-edges compiled as *backward* conditionals.

        Tight counted loops compile to a simple backward conditional branch;
        loops in complex code are frequently rotated, exiting through a
        forward conditional plus an unconditional jump.  Unless overridden,
        the fraction therefore grows with the loop trip count.
        """
        if self.backward_loop_frac is not None:
            return self.backward_loop_frac
        return min(0.92, 0.44 + self.loop_trip_mean / 300.0)

    def with_threads(self, threads: int) -> "WorkloadProfile":
        """A copy of this profile run with a different thread count.

        Multi-threaded copies get a ``-N`` name suffix and acquire the
        synchronisation behaviour (exclusives and barriers) that the paper's
        Cluster 1 attributes to concurrent applications.
        """
        if threads == self.threads:
            return self
        base = self.name.rsplit("-", 1)
        name = self.name
        if len(base) == 2 and base[1].isdigit():
            name = base[0]
        sync = 0.006 * (threads - 1) if threads > 1 else 0.0
        mix_budget = self.frac_int_alu
        sync = min(sync, mix_budget / 4.0)
        return replace(
            self,
            name=f"{name}-{threads}",
            threads=threads,
            frac_ldrex=self.frac_ldrex + sync,
            frac_strex=self.frac_strex + sync,
            frac_barrier=self.frac_barrier + sync / 2.0,
        )

    def iter_mix(self) -> Iterator[tuple[str, float]]:
        """Iterate over (kind-name, fraction) instruction-mix pairs."""
        yield "int_alu", self.frac_int_alu
        yield "load", self.frac_load
        yield "store", self.frac_store
        yield "branch", self.frac_branch
        yield "mul", self.frac_mul
        yield "div", self.frac_div
        yield "fp", self.frac_fp
        yield "simd", self.frac_simd
        yield "ldrex", self.frac_ldrex
        yield "strex", self.frac_strex
        yield "barrier", self.frac_barrier
