"""Lint-engine throughput: serial vs parallel Phase A, cold vs warm cache.

The PR-8 engine contract has two performance axes:

* **parallel fan-out** — Phase A (per-file parse + local rules) is a pure
  function of one file's bytes, so it fans out across worker processes;
  on a multi-core box the cold parallel run must beat the cold serial run
  by >=2x.  On a single-core container the fan-out only adds IPC cost, so
  that assertion is guarded on ``os.cpu_count()``.
* **incremental cache** — a warm run with ``--cache-dir`` re-analyses
  nothing and re-merges nothing; it must beat the cold serial run by
  >=2x on any machine, which makes it the axis CI can always enforce.

Both axes are meaningless if they change results, so byte-identical
findings across all configurations are asserted before any timing is
trusted.  Numbers go to ``BENCH_lint.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import paper_row, print_header
from repro.analysis import RunStats, lint_paths
from repro.analysis.engine import LintConfig

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
#: The real tree `make lint` covers (minus the known-bad rule fixtures).
LINT_TARGETS = [os.path.join(REPO_ROOT, "src")]
RESULTS_PATH = os.path.join(REPO_ROOT, "BENCH_lint.json")

WARM_SPEEDUP_FLOOR = 2.0
PARALLEL_SPEEDUP_FLOOR = 2.0


def _timed_run(**kwargs):
    stats = RunStats()
    started = time.perf_counter()
    findings = lint_paths(LINT_TARGETS, LintConfig(), stats=stats, **kwargs)
    elapsed = time.perf_counter() - started
    return findings, elapsed, stats


def _keys(findings):
    return [
        (f.path, f.line, f.col, f.rule, f.message) for f in findings
    ]


@pytest.mark.bench_lint
def test_bench_lint(tmp_path):
    cores = os.cpu_count() or 1
    cache_dir = str(tmp_path / "lint-cache")

    serial, serial_s, _ = _timed_run(jobs=1)
    parallel, parallel_s, _ = _timed_run(jobs=0)
    cold, cold_s, cold_stats = _timed_run(jobs=1, cache_dir=cache_dir)
    warm, warm_s, warm_stats = _timed_run(jobs=1, cache_dir=cache_dir)

    # Determinism first: timings are meaningless if results differ.
    reference = _keys(serial)
    assert _keys(parallel) == reference
    assert _keys(cold) == reference
    assert _keys(warm) == reference
    assert warm_stats.analysed == 0
    assert warm_stats.refinalized == ()

    parallel_speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    warm_speedup = serial_s / warm_s if warm_s > 0 else 0.0

    print_header("lint engine throughput (src tree)")
    print(paper_row("files", "n/a", str(cold_stats.files)))
    print(paper_row("serial cold", "n/a", f"{serial_s * 1e3:.1f} ms"))
    print(
        paper_row(
            f"parallel cold ({cores} cores)",
            ">=2x vs serial (multi-core)",
            f"{parallel_s * 1e3:.1f} ms ({parallel_speedup:.2f}x)",
        )
    )
    print(paper_row("cache cold", "n/a", f"{cold_s * 1e3:.1f} ms"))
    print(
        paper_row(
            "cache warm",
            ">=2x vs serial",
            f"{warm_s * 1e3:.1f} ms ({warm_speedup:.2f}x)",
        )
    )

    payload = {
        "bench": "lint_engine",
        "files": cold_stats.files,
        "cores": cores,
        "serial_cold_seconds": serial_s,
        "parallel_cold_seconds": parallel_s,
        "cached_cold_seconds": cold_s,
        "cached_warm_seconds": warm_s,
        "parallel_speedup": parallel_speedup,
        "warm_speedup": warm_speedup,
        "findings": len(reference),
        "parallel_floor": PARALLEL_SPEEDUP_FLOOR,
        "warm_floor": WARM_SPEEDUP_FLOOR,
        # The warm floor is always asserted; the parallel floor only on
        # multi-core hosts, and the snapshot records which one this was.
        "cpu_gated": True,
        "gate_enforced": cores >= 2,
    }
    with open(RESULTS_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # The warm-cache floor holds on any machine; the parallel floor needs
    # real cores (a 1-CPU container pays IPC cost for zero parallelism).
    assert warm_speedup >= WARM_SPEEDUP_FLOOR
    if cores >= 2:
        assert parallel_speedup >= PARALLEL_SPEEDUP_FLOOR
