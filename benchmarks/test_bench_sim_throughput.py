"""Cold-collection throughput: serial vs parallel simulation executor.

GemStone's workflow (Section VII) reruns the whole evaluation after every
model tweak, so cold dataset collection is the dominant wall-clock cost of
the tool.  This benchmark measures a cold ``collect_validation_dataset``
pass — every (workload x machine) simulation recomputed — serially and
through the process-pool executor, prints traces/sec and instrs/sec for
each, and asserts the two datasets are bit-identical.

The >=2x target for ``jobs=4`` assumes >=4 usable cores; on smaller hosts
(including single-CPU CI containers, where process spawn overhead makes the
pool a net loss) the speedup is printed but not asserted.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import paper_row, print_header
from repro.core.validation import collect_validation_dataset
from repro.sim.gem5 import Gem5Simulation
from repro.sim.machine import gem5_ex5_big
from repro.sim.platform import HardwarePlatform
from repro.workloads.suites import validation_workloads

TRACE_INSTRUCTIONS = 20_000
N_WORKLOADS = 12
FREQS = (1000e6,)


def _cold_collect(jobs: int):
    """One cold collection pass; returns (dataset, wall_seconds, n_sims)."""
    profiles = tuple(validation_workloads())[:N_WORKLOADS]
    platform = HardwarePlatform("A15", trace_instructions=TRACE_INSTRUCTIONS)
    gem5 = Gem5Simulation(gem5_ex5_big(), trace_instructions=TRACE_INSTRUCTIONS)
    started = time.perf_counter()
    dataset = collect_validation_dataset(
        platform, gem5, profiles, FREQS, with_power=False, jobs=jobs
    )
    wall = time.perf_counter() - started
    return dataset, wall, 2 * len(profiles)


def test_bench_sim_throughput():
    serial_ds, serial_wall, n_sims = _cold_collect(jobs=1)
    parallel_ds, parallel_wall, _ = _cold_collect(jobs=4)

    speedup = serial_wall / parallel_wall if parallel_wall > 0 else float("inf")
    instrs = n_sims * TRACE_INSTRUCTIONS

    print_header("Cold-collection throughput: serial vs parallel executor")
    print(
        paper_row(
            f"serial (jobs=1), {n_sims} sims",
            "n/a",
            f"{serial_wall:.2f}s = {n_sims / serial_wall:.1f} traces/s, "
            f"{instrs / serial_wall / 1e6:.2f} M instrs/s",
        )
    )
    print(
        paper_row(
            "parallel (jobs=4)",
            "n/a",
            f"{parallel_wall:.2f}s = {n_sims / parallel_wall:.1f} traces/s, "
            f"{instrs / parallel_wall / 1e6:.2f} M instrs/s",
        )
    )
    print(
        paper_row(
            f"speedup on {os.cpu_count()} cpus",
            ">=2x on >=4 cores",
            f"{speedup:.2f}x",
        )
    )

    # Determinism is the hard guarantee; speedup depends on the host.
    assert len(serial_ds.runs) == len(parallel_ds.runs)
    for s, p in zip(serial_ds.runs, parallel_ds.runs):
        assert s.workload == p.workload and s.freq_hz == p.freq_hz
        assert s.hw.time_seconds == p.hw.time_seconds
        assert s.hw.pmc == p.hw.pmc
        assert s.gem5.stats == p.gem5.stats
