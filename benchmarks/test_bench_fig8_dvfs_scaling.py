"""Fig. 8 — performance/power/energy scaling across DVFS levels.

Paper findings reproduced:

* A15 mean speedup 1800 vs 600 MHz: 2.7x hardware, 2.9x model — the model,
  with its too-low DRAM latency, looks more CPU-bound and scales better;
* the hardware speedup *range* (2.1x-3.2x) is wider than the model's
  (2.8x-3.0x): the model compresses workload diversity;
* hardware energy at 1800 MHz is 1.7x-2.3x the 600 MHz energy (mean 1.8x),
  the model estimates 1.6x-1.9x (mean 1.7x);
* the modelled A15 performance relative to the A7 is lower than measured.
"""

from benchmarks.conftest import paper_row, print_header
from repro.core.energy import big_little_scaling, dvfs_scaling
from repro.core.report import render_dvfs_figure

TOP = 1800e6
BOTTOM = 600e6


def test_fig8_a15_scaling(benchmark, gs_a15):
    scaling = benchmark.pedantic(
        lambda: dvfs_scaling(
            gs_a15.dataset, gs_a15.application, gs_a15.workload_clusters,
            base_freq_hz=BOTTOM,
        ),
        rounds=1,
        iterations=1,
    )

    print_header("Fig. 8: A15 scaling normalised to 600 MHz")
    print(render_dvfs_figure(scaling))

    hw = scaling.speedup_stats(TOP, "hw")
    gem5 = scaling.speedup_stats(TOP, "gem5")
    print(paper_row("mean speedup 1800/600 (HW / model)", "2.7x / 2.9x",
                    f"{hw['mean']:.2f}x / {gem5['mean']:.2f}x"))
    print(paper_row("HW speedup range", "2.1x - 3.2x",
                    f"{hw['min']:.2f}x - {hw['max']:.2f}x"))
    print(paper_row("model speedup range", "2.8x - 3.0x",
                    f"{gem5['min']:.2f}x - {gem5['max']:.2f}x"))

    clock_ratio = TOP / BOTTOM  # 3.0
    assert 1.5 < hw["mean"] < clock_ratio
    assert gem5["mean"] > hw["mean"], "model must scale better (DRAM too low)"
    hw_range = hw["max"] - hw["min"]
    gem5_range = gem5["max"] - gem5["min"]
    assert gem5_range < hw_range, "model must compress scaling diversity"

    hw_energy = scaling.energy_stats(TOP, "hw")
    gem5_energy = scaling.energy_stats(TOP, "gem5")
    print(paper_row("HW energy increase", "1.7x - 2.3x (mean 1.8x)",
                    f"{hw_energy['min']:.2f}x - {hw_energy['max']:.2f}x "
                    f"(mean {hw_energy['mean']:.2f}x)"))
    print(paper_row("model energy increase", "1.6x - 1.9x (mean 1.7x)",
                    f"{gem5_energy['min']:.2f}x - {gem5_energy['max']:.2f}x "
                    f"(mean {gem5_energy['mean']:.2f}x)"))
    assert 1.2 < hw_energy["mean"] < 3.0
    assert hw_energy["mean"] > 1.0 and gem5_energy["mean"] > 1.0


def test_fig8_big_little_relative_performance(benchmark, gs_a15, gs_a7):
    """'the modelled Cortex-A15 performance is lower, with respect to the
    Cortex-A7, than measured from HW'."""
    comparison = benchmark.pedantic(
        lambda: big_little_scaling(gs_a7.dataset, gs_a15.dataset),
        rounds=1,
        iterations=1,
    )

    print_header("Fig. 8 detail: A15 performance relative to A7 @ 200 MHz")
    print(f"  {'OPP':>10s} {'HW':>8s} {'model':>8s}")
    for freq in sorted(comparison.relative_performance["hw"]):
        hw = comparison.relative_performance["hw"][freq]
        gem5 = comparison.relative_performance["gem5"][freq]
        print(f"  {freq / 1e6:>7.0f}MHz {hw:>7.2f}x {gem5:>7.2f}x")

    deficit = comparison.a15_deficit()
    print(paper_row("A15 relative-performance deficit (hw - model)",
                    "positive", f"{deficit:+.2f}x mean"))
    assert deficit > 0, "the buggy model under-rates the A15 vs the A7"

    # The A15 at its top OPP outruns the A7 base OPP by a large factor on
    # both hardware and model.
    top = max(comparison.relative_performance["hw"])
    assert comparison.relative_performance["hw"][top] > 5.0
