"""Replay-profiler overhead: traced+profiled vs untraced columnar replay.

The deterministic replay profiler (:mod:`repro.obs.prof`) adds one
``replay-profile`` event per columnar simulation, whose attribution is a
pure function of the already-computed ``SimResult.components`` — so its
cost is a dict walk and one trace event, never a second pass over the
trace.  The contract (ISSUE PR 10) is that a fully traced and profiled
replay stays within 5% of the untraced replay, and that the attribution
covers at least 95% of simulated core cycles (it covers 100% by
construction: every component term is claimed by exactly one pass).

Repetitions interleave the two configurations and take the minimum of
each to shed scheduler noise.  Results go to ``BENCH_prof.json`` at the
repo root; ``gate_enforced`` records that the assertions ran
unconditionally (the budget needs no multi-core host, so ``cpu_gated``
is false).
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import paper_row, print_header
from repro.obs.prof import profile_records
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.cpu import simulate
from repro.sim.machine import gem5_ex5_big
from repro.workloads.suites import workload_by_name
from repro.workloads.trace import compile_trace

TRACE_INSTRUCTIONS = 20_000
WORKLOAD = "mi-sha"
CALLS_PER_REP = 6
REPS = 5
OVERHEAD_BUDGET = 0.05
COVERAGE_FLOOR = 0.95

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_prof.json"
)


def _time_replays(trace, machine, tracer) -> float:
    started = time.perf_counter()
    for _ in range(CALLS_PER_REP):
        simulate(trace, machine, engine="columnar", tracer=tracer)
    return time.perf_counter() - started


def test_bench_profiler_overhead():
    trace = compile_trace(workload_by_name(WORKLOAD), TRACE_INSTRUCTIONS)
    machine = gem5_ex5_big()

    # Warm every code path (imports, first-call caches) before timing.
    _time_replays(trace, machine, NULL_TRACER)
    _time_replays(trace, machine, Tracer(enabled=True))

    untraced, profiled = [], []
    for _ in range(REPS):
        untraced.append(_time_replays(trace, machine, NULL_TRACER))
        profiled.append(
            _time_replays(trace, machine, Tracer(enabled=True))
        )
    untraced_s, profiled_s = min(untraced), min(profiled)
    overhead = profiled_s / untraced_s - 1.0

    # Coverage gate on a real profiled run (not the timed loops).
    tracer = Tracer(enabled=True)
    result = simulate(trace, machine, engine="columnar", tracer=tracer)
    profile = profile_records(tracer.records)
    assert profile["core_cycles"] == result.core_cycles

    print_header("Replay profiler overhead: columnar hot path")
    print(
        paper_row(
            f"untraced replay, {TRACE_INSTRUCTIONS // 1000}k instrs",
            "n/a",
            f"{untraced_s / CALLS_PER_REP * 1e6:,.0f} us/call",
        )
    )
    print(
        paper_row(
            "traced + profiled replay",
            "n/a",
            f"{profiled_s / CALLS_PER_REP * 1e6:,.0f} us/call",
        )
    )
    print(
        paper_row(
            "profiler overhead",
            f"<{OVERHEAD_BUDGET * 100:.0f}%",
            f"{overhead * 100:.2f}%",
        )
    )
    print(
        paper_row(
            "cycle attribution coverage",
            f">={COVERAGE_FLOOR * 100:.0f}%",
            f"{profile['coverage'] * 100:.1f}%",
        )
    )

    payload = {
        "bench": "profiler_overhead",
        "workload": WORKLOAD,
        "trace_instructions": TRACE_INSTRUCTIONS,
        "calls_per_rep": CALLS_PER_REP,
        "reps": REPS,
        "untraced_seconds_per_call": untraced_s / CALLS_PER_REP,
        "profiled_seconds_per_call": profiled_s / CALLS_PER_REP,
        "overhead_fraction": overhead,
        "budget_fraction": OVERHEAD_BUDGET,
        "coverage": profile["coverage"],
        "coverage_floor": COVERAGE_FLOOR,
        "cpu_gated": False,
        "gate_enforced": True,
    }
    with open(RESULTS_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert profile["coverage"] >= COVERAGE_FLOOR
    assert overhead < OVERHEAD_BUDGET
