"""T5 — the branch-predictor bug-fix case study (Sections I and VII).

Paper numbers reproduced in shape:

* execution-time MPE swings from -51 % (pre-fix) to +10 % (post-fix), with
  MAPE improving from 59 % to 18 % (at 1 GHz on the A15);
* the energy MAPE improves from 50 % to 18 %;
* the same GemStone run, re-executed against the new simulator version,
  detects the change — the tool's raison d'etre.
"""

from benchmarks.conftest import ANALYSIS_FREQ, paper_row, print_header
from repro.core.energy import compare_power_energy


def test_bp_fix_swings_time_error(benchmark, gs_a15, gs_a15_fixed):
    def analyse():
        return (
            gs_a15.dataset.time_mpe(ANALYSIS_FREQ),
            gs_a15.dataset.time_mape(ANALYSIS_FREQ),
            gs_a15_fixed.dataset.time_mpe(ANALYSIS_FREQ),
            gs_a15_fixed.dataset.time_mape(ANALYSIS_FREQ),
        )

    buggy_mpe, buggy_mape, fixed_mpe, fixed_mape = benchmark(analyse)

    print_header("T5: the BP fix (Section VII)")
    print(paper_row("pre-fix MPE / MAPE", "-51% / 59%",
                    f"{buggy_mpe:+.1f}% / {buggy_mape:.1f}%"))
    print(paper_row("post-fix MPE / MAPE", "+10% / 18%",
                    f"{fixed_mpe:+.1f}% / {fixed_mape:.1f}%"))
    print(paper_row("MPE swing", "-51% -> +10% (61 points)",
                    f"{buggy_mpe:+.1f}% -> {fixed_mpe:+.1f}% "
                    f"({fixed_mpe - buggy_mpe:.0f} points)"))

    assert buggy_mpe < -30
    assert fixed_mpe > -5
    assert fixed_mpe - buggy_mpe > 35, "the swing must be dramatic"
    assert fixed_mape < buggy_mape / 2, "MAPE must improve substantially"


def test_bp_fix_improves_energy_error(benchmark, gs_a15, gs_a15_fixed):
    """'The energy MAPE improved from 50% to 18%.'"""
    def analyse():
        buggy = compare_power_energy(
            gs_a15.dataset, gs_a15.application, gs_a15.workload_clusters
        )
        # Apply the SAME power model to the fixed model's outputs: only the
        # performance model changed, as in the paper.
        fixed = compare_power_energy(
            gs_a15_fixed.dataset, gs_a15.application, gs_a15.workload_clusters
        )
        return buggy.energy_mape(), fixed.energy_mape()

    buggy_energy, fixed_energy = benchmark.pedantic(analyse, rounds=1, iterations=1)

    print_header("T5b: energy error before/after the fix")
    print(paper_row("energy MAPE pre-fix", "50%", f"{buggy_energy:.1f}%"))
    print(paper_row("energy MAPE post-fix", "18%", f"{fixed_energy:.1f}%"))

    assert fixed_energy < buggy_energy / 1.8
    assert buggy_energy > 35.0
