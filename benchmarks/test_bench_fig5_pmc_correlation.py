"""Fig. 5 — correlation of each HW PMC rate with the execution-time MPE.

Paper findings reproduced:

* the largest positive correlations come from the memory-barrier /
  exclusive-instruction cluster (0x6C, 0x6D, 0x7E) — concurrency costs are
  too cheap in the model;
* unaligned-access events also correlate positively;
* the largest negative correlations come from branch/control-flow rate
  events (0x12, 0x76, 0x78);
* the branch *misprediction* rate (0x10) is negative but notably smaller
  in magnitude than the branch-rate events.
"""

from benchmarks.conftest import paper_row, print_header
from repro.core.error_id import pmc_error_correlation
from repro.core.report import render_pmc_correlation_figure
from repro.events.armv7_pmu import event_name


def test_fig5_pmc_error_correlation(benchmark, gs_a15):
    dataset = gs_a15.dataset
    freq = gs_a15.config.analysis_freq_hz

    correlation = benchmark(
        lambda: pmc_error_correlation(dataset, freq, n_event_clusters=28)
    )

    print_header("Fig. 5: HW PMC correlation with execution-time MPE (A15)")
    print(render_pmc_correlation_figure(correlation))

    def corr(event):
        return correlation.correlation_of(event_name(event))

    barrier = corr(0x7E)
    ldrex = corr(0x6C)
    unaligned = corr(0x0F)
    branch_rate = min(corr(0x12), corr(0x76), corr(0x78))
    mispredict = corr(0x10)

    print(paper_row("barrier/exclusive events (0x6C/0x6D/0x7E)",
                    "largest positive", f"{barrier:+.2f} / {ldrex:+.2f}"))
    print(paper_row("unaligned accesses (0x0F)", "positive", f"{unaligned:+.2f}"))
    print(paper_row("branch-rate events (0x12/0x76/0x78)",
                    "largest negative", f"{branch_rate:+.2f}"))
    print(paper_row("mispredict rate (0x10)", "negative, smaller |r|",
                    f"{mispredict:+.2f}"))

    assert barrier > 0.15 and ldrex > 0.15
    assert branch_rate < -0.4
    # "notably smaller (in magnitude)" than the branch-rate correlation.
    assert abs(mispredict) < 0.3
    assert abs(mispredict) < abs(branch_rate) / 2

    # Barrier events co-vary (the paper's Cluster 1), and the cluster that
    # holds them is positively correlated as a whole.
    clusters = correlation.clusters
    assert clusters.cluster_of(event_name(0x7E)) == clusters.cluster_of(
        event_name(0x7D)
    )
    barrier_cluster = clusters.cluster_of(event_name(0x7E))
    summary = correlation.cluster_summary()
    assert summary[barrier_cluster]["mean"] > 0.1


def test_fig5_integer_events_negative(benchmark, gs_a15):
    """Clusters 7/8: instructions retired and integer DP events have
    notable negative correlations (CPU-intensive workloads overestimated)."""
    correlation = pmc_error_correlation(
        gs_a15.dataset, gs_a15.config.analysis_freq_hz
    )

    def analyse():
        return {
            "inst_retired": correlation.correlation_of(event_name(0x08)),
            "inst_spec": correlation.correlation_of(event_name(0x1B)),
            "dp_spec": correlation.correlation_of(event_name(0x73)),
        }

    result = benchmark(analyse)
    print_header("Fig. 5 detail: instruction-rate correlations")
    for key, value in result.items():
        print(f"  {key}: {value:+.2f}")
    assert result["inst_retired"] < -0.2
    assert result["dp_spec"] < -0.2
