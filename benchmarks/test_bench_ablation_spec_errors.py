"""A1 — ablation of the individual specification errors (Section IV-F).

The paper stresses that errors interact: fixing the L1 ITLB size *alone*
makes the MAPE worse ("changing this to the correct value results in a
significantly larger MAPE, as expected, due to the BP errors present").
This bench ablates each documented specification error of ``ex5_big``
individually and reports its isolated contribution to the execution-time
error — the evidence base for "address the most significant sources of
error first".
"""

from dataclasses import replace

import numpy as np

from benchmarks.conftest import (
    ANALYSIS_FREQ,
    BENCH_TRACE_INSTRUCTIONS,
    paper_row,
    print_header,
)
from repro.sim.cpu import simulate
from repro.sim.machine import gem5_ex5_big, hardware_a15
from repro.uarch.tlb import TlbHierarchyConfig
from repro.workloads.suites import validation_workloads
from repro.workloads.trace import compile_trace

HW = hardware_a15()
BUGGY = gem5_ex5_big()

#: Each ablation repairs exactly one specification error of the model.
ABLATIONS = {
    "fix BP only": replace(
        BUGGY, predictor="tournament", ras_corruption=0.1, indirect_corruption=0.15
    ),
    "fix DRAM latency only": replace(BUGGY, dram_latency_ns=HW.dram_latency_ns),
    "fix TLB hierarchy only": replace(BUGGY, tlb=HW.tlb),
    "fix sync costs only": replace(
        BUGGY,
        barrier_cycles=HW.barrier_cycles,
        ldrex_cycles=HW.ldrex_cycles,
        strex_cycles=HW.strex_cycles,
    ),
    "fix ITLB size only (32 entries)": replace(
        BUGGY,
        tlb=TlbHierarchyConfig(
            itlb_entries=32,
            dtlb_entries=BUGGY.tlb.dtlb_entries,
            unified_l2=BUGGY.tlb.unified_l2,
            l2_entries=BUGGY.tlb.l2_entries,
            l2_assoc=BUGGY.tlb.l2_assoc,
            l2_latency=BUGGY.tlb.l2_latency,
            walk_cycles=BUGGY.tlb.walk_cycles,
        ),
    ),
}


def _mape_mpe(machine, traces, hw_times):
    pes = []
    for trace, hw_time in zip(traces, hw_times):
        model_time = simulate(trace, machine).time_seconds(ANALYSIS_FREQ)
        pes.append((hw_time - model_time) / hw_time * 100.0)
    pes = np.asarray(pes)
    return float(np.abs(pes).mean()), float(pes.mean())


def test_a1_specification_error_ablation(benchmark):
    # A 20-workload subset keeps the 6-machine sweep affordable.
    workloads = validation_workloads()[::2][:20]
    traces = [compile_trace(w, BENCH_TRACE_INSTRUCTIONS) for w in workloads]
    hw_times = [
        simulate(t, HW).time_seconds(ANALYSIS_FREQ) for t in traces
    ]
    baseline = _mape_mpe(BUGGY, traces, hw_times)

    def sweep():
        return {
            name: _mape_mpe(machine, traces, hw_times)
            for name, machine in ABLATIONS.items()
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_header("A1: single-error ablations of ex5_big")
    print(f"  {'(baseline: all errors present)':<46s} "
          f"MAPE {baseline[0]:6.1f}%  MPE {baseline[1]:+7.1f}%")
    for name, (mape, mpe) in results.items():
        print(f"  {name:<46s} MAPE {mape:6.1f}%  MPE {mpe:+7.1f}%")

    # The BP is THE dominant error: repairing it alone recovers most of the
    # accuracy, repairing anything else alone barely moves (or worsens) it.
    bp_fixed = results["fix BP only"]
    assert bp_fixed[0] < baseline[0] * 0.55
    for name, (mape, _) in results.items():
        if name != "fix BP only":
            assert mape > bp_fixed[0], f"{name} must not beat fixing the BP"

    # The paper's Section IV-F observation: correcting the ITLB size alone
    # does not help while the BP errors are present.
    itlb_fixed = results["fix ITLB size only (32 entries)"]
    print(paper_row("fix ITLB size alone", "larger MAPE (no help)",
                    f"{itlb_fixed[0]:.1f}% vs baseline {baseline[0]:.1f}%"))
    assert itlb_fixed[0] > baseline[0] * 0.9
