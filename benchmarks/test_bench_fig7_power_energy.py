"""Fig. 7 — power and energy error of the gem5-driven estimates.

Paper numbers reproduced in shape (A15, 45 workloads):

* power MPE +3.3 %, MAPE 10 % — small despite large event errors, because
  the dominant components (intercept, 0x11 rate) are well modelled and the
  others partially cancel;
* energy MPE -43.6 %, MAPE 50 % — energy inherits the execution-time error;
* per-cluster energy MAPE spans two orders of magnitude (0.6 % .. 266 %);
* Cortex-A7: power -5.48 % / 7.97 %, energy +5.85 % / 14.6 %.
"""

import numpy as np

from benchmarks.conftest import paper_row, print_header
from repro.core.energy import compare_power_energy
from repro.core.report import render_power_energy_figure


def test_fig7_a15_power_energy(benchmark, gs_a15):
    comparison = benchmark.pedantic(
        lambda: compare_power_energy(
            gs_a15.dataset, gs_a15.application, gs_a15.workload_clusters
        ),
        rounds=1,
        iterations=1,
    )

    print_header("Fig. 7: A15 power/energy error of gem5-driven estimates")
    print(render_power_energy_figure(comparison))
    print(paper_row("power MPE / MAPE", "+3.3% / 10%",
                    f"{comparison.power_mpe():+.1f}% / {comparison.power_mape():.1f}%"))
    print(paper_row("energy MPE / MAPE", "-43.6% / 50%",
                    f"{comparison.energy_mpe():+.1f}% / {comparison.energy_mape():.1f}%"))

    assert abs(comparison.power_mpe()) < 15.0
    assert comparison.power_mape() < 20.0
    assert comparison.energy_mpe() < -25.0
    assert comparison.energy_mape() > 35.0
    assert comparison.energy_mape() > 2.5 * comparison.power_mape()

    table = comparison.cluster_table()
    energy_mapes = [row["energy_mape"] for row in table.values()]
    print(paper_row("cluster energy MAPE range", "0.6% .. 266%",
                    f"{min(energy_mapes):.1f}% .. {max(energy_mapes):.0f}%"))
    assert max(energy_mapes) > 100.0
    assert min(energy_mapes) < 30.0


def test_fig7_component_cancellation(benchmark, gs_a15):
    """Section VI: a cluster can have a tiny power error while individual
    model inputs are off by large factors, because components cancel."""
    comparison = compare_power_energy(
        gs_a15.dataset, gs_a15.application, gs_a15.workload_clusters
    )

    def analyse():
        best = min(
            comparison.cluster_table().items(), key=lambda kv: kv[1]["power_mape"]
        )
        hw_parts = comparison.mean_components("hw", cluster=best[0])
        gem5_parts = comparison.mean_components("gem5", cluster=best[0])
        return best, hw_parts, gem5_parts

    (best_cluster, stats), hw_parts, gem5_parts = benchmark(analyse)
    print_header("Fig. 7 detail: component cancellation")
    print(f"  best cluster {best_cluster}: power MAPE {stats['power_mape']:.1f}%")
    for key in hw_parts:
        print(f"    {key:<12s} hw={hw_parts[key]:+.3f} W  gem5={gem5_parts[key]:+.3f} W")

    assert stats["power_mape"] < 8.0
    # At least one individual component differs by >30 % while the total
    # power error stays small — the cancellation effect.
    relative_gaps = [
        abs(hw_parts[k] - gem5_parts[k]) / max(abs(hw_parts[k]), 1e-6)
        for k in hw_parts
        if abs(hw_parts[k]) > 0.005
    ]
    assert max(relative_gaps) > 0.3


def test_fig7_a7_power_energy(benchmark, gs_a7):
    comparison = benchmark.pedantic(
        lambda: compare_power_energy(
            gs_a7.dataset, gs_a7.application, gs_a7.workload_clusters
        ),
        rounds=1,
        iterations=1,
    )

    print_header("Fig. 7 (A7 variant): power/energy error")
    print(paper_row("power MPE / MAPE", "-5.48% / 7.97%",
                    f"{comparison.power_mpe():+.1f}% / {comparison.power_mape():.1f}%"))
    print(paper_row("energy MPE / MAPE", "+5.85% / 14.6%",
                    f"{comparison.energy_mpe():+.1f}% / {comparison.energy_mape():.1f}%"))

    # The A7 errors are far smaller than the A15's (the simpler in-order
    # model is more accurate).
    assert comparison.power_mape() < 15.0
    assert comparison.energy_mape() < 30.0
