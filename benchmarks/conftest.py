"""Shared full-scale datasets for the per-figure benchmarks.

Each benchmark regenerates one of the paper's tables or figures and prints a
paper-vs-measured comparison.  The expensive part — simulating 45-65
workloads on up to five machine configurations — happens once per session
here; the benchmarks then measure the *analysis* stages, which is also what
GemStone's runtime is dominated by once simulation results are cached.

Trace length trades fidelity for wall-clock; 40k instructions keeps the full
session under a few minutes while preserving every reproduced shape.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import GemStone, GemStoneConfig

BENCH_TRACE_INSTRUCTIONS = 40_000
ANALYSIS_FREQ = 1000e6


def _config(core: str, machine: str | None = None) -> GemStoneConfig:
    return GemStoneConfig(
        core=core,
        gem5_machine=machine,
        analysis_freq_hz=ANALYSIS_FREQ,
        trace_instructions=BENCH_TRACE_INSTRUCTIONS,
    )


@pytest.fixture(scope="session")
def gs_a15() -> GemStone:
    """A15 cluster vs the pre-fix ex5_big model (the paper's main subject)."""
    gemstone = GemStone(_config("A15"))
    gemstone.dataset  # force collection outside benchmark timings
    return gemstone


@pytest.fixture(scope="session")
def gs_a15_fixed(gs_a15) -> GemStone:
    """A15 cluster vs the post-BP-fix model (Section VII)."""
    gemstone = gs_a15.with_machine("gem5-ex5-big-fixed")
    gemstone.dataset
    return gemstone


@pytest.fixture(scope="session")
def gs_a7() -> GemStone:
    """A7 cluster vs the ex5_LITTLE model."""
    gemstone = GemStone(_config("A7"))
    gemstone.dataset
    return gemstone


def paper_row(label: str, paper: str, measured: str) -> str:
    return f"  {label:<46s} paper: {paper:<18s} measured: {measured}"


def print_header(title: str) -> None:
    print()
    print(f"=== {title} ===")
