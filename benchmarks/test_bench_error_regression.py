"""T3 — stepwise regression of the execution-time error (Section IV-D).

Paper findings reproduced:

* a handful of HW PMC events predict the gem5 error with R^2 ~= 0.97
  (seven events; the best single predictor is PC_WRITE_SPEC);
* gem5's own statistics do slightly better (eight events, R^2 ~= 0.99);
* every accepted term satisfies the p < 0.05 rule.
"""

from benchmarks.conftest import paper_row, print_header
from repro.core.error_id import error_regression


def test_error_regression_from_hw_pmcs(benchmark, gs_a15):
    dataset = gs_a15.dataset
    freq = gs_a15.config.analysis_freq_hz

    regression = benchmark(
        lambda: error_regression(dataset, freq, source="hw", max_terms=8)
    )

    print_header("T3: stepwise regression of the time error (HW PMCs)")
    print(paper_row("R^2 / adjusted R^2", "0.97 / 0.97",
                    f"{regression.r2:.3f} / {regression.adjusted_r2:.3f}"))
    print(paper_row("events selected", "7", str(len(regression.selected))))
    print(paper_row("best single predictor", "0x76 PC_WRITE_SPEC (total)",
                    regression.best_predictor))
    for step in regression.stepwise.steps:
        print(f"    + {step.added:<40s} R^2 -> {step.r2:.3f}")

    assert regression.r2 > 0.9
    assert 2 <= len(regression.selected) <= 8
    assert regression.stepwise.model.max_p_value() <= 0.05
    # Branch/speculation events carry the error signal, as in the paper
    # (whose selection leads with PC_WRITE_SPEC and includes BR_RETURN_SPEC
    # and LDREX_SPEC alongside memory events).
    assert any(
        any(token in name for token in
            ("PC_WRITE", "BR_", "0x12", "0x76", "0x78", "0x10", "0x1B", "LDREX",
             "TLB", "SPEC"))
        for name in regression.selected
    ), regression.selected


def test_error_regression_from_gem5_stats(benchmark, gs_a15):
    dataset = gs_a15.dataset
    freq = gs_a15.config.analysis_freq_hz

    regression = benchmark(
        lambda: error_regression(dataset, freq, source="gem5", max_terms=8)
    )

    print_header("T3: stepwise regression of the time error (gem5 stats)")
    print(paper_row("R^2", "0.99", f"{regression.r2:.3f}"))
    print(paper_row("events selected", "8", str(len(regression.selected))))
    print("    selected: " + ", ".join(regression.selected))

    assert regression.r2 > 0.93
    hw = error_regression(dataset, freq, source="hw", max_terms=8)
    assert regression.r2 >= hw.r2 - 0.05, (
        "gem5's own stats explain its error about as well as HW PMCs"
    )
