"""T2 — gem5-event correlation clusters (Section IV-C).

Paper findings reproduced:

* thousands of gem5 stats reduce to ~94 with |r| > 0.3;
* the largest strongly-negative cluster (Cluster A) is dominated by ITLB /
  walker-cache events, with every member below -0.51, and also contains
  non-ITLB events such as ``branchPred.RASInCorrect`` — the fingerprint of
  the BP->ITLB causal chain;
* branch-prediction events (Cluster B) and L1I-miss events (Cluster C)
  carry the next negative tiers;
* positively-correlated events include fetch/IPC rates and L2 writebacks /
  miss latency (the DRAM-latency error).
"""

from benchmarks.conftest import paper_row, print_header
from repro.core.error_id import gem5_error_correlation


def test_gem5_event_clusters(benchmark, gs_a15):
    dataset = gs_a15.dataset
    freq = gs_a15.config.analysis_freq_hz

    correlation = benchmark(
        lambda: gem5_error_correlation(dataset, freq, min_abs_correlation=0.3)
    )

    by_name = dict(zip(correlation.event_names, correlation.correlations))
    clusters = correlation.clusters

    print_header("T2: gem5 statistics with |r| > 0.3, clustered")
    print(paper_row("events above |r|=0.3", "94", str(len(by_name))))

    # Cluster A: the cluster containing the walker-cache accesses.
    walker_stat = next(
        name for name in by_name if "itb_walker_cache.ReadReq_accesses" in name
    )
    cluster_a = clusters.cluster_of(walker_stat)
    members_a = clusters.members(cluster_a)
    corr_a = [by_name[m] for m in members_a]
    itlb_members = [m for m in members_a if "itb" in m]
    print(paper_row("Cluster A size / ITLB share",
                    "31 events, mostly ITLB",
                    f"{len(members_a)} events, {len(itlb_members)} ITLB"))
    print(paper_row("Cluster A max correlation", "< -0.51", f"{max(corr_a):+.2f}"))
    non_itlb = [m for m in members_a if "itb" not in m]
    print(f"  non-ITLB members of Cluster A: {non_itlb[:6]}")

    assert len(by_name) > 40
    assert max(corr_a) < -0.25, "Cluster A must be uniformly negative"
    # A solid ITLB contingent rides in Cluster A, alongside the BP-squash
    # events the paper also lists there (exec_nop, PendingTrapStallCycles,
    # RASInCorrect, ...).
    assert len(itlb_members) >= 5

    # Branch-misprediction events are strongly negative (Cluster B).
    bp_corr = [v for k, v in by_name.items()
               if "condIncorrect" in k or "branchMispredicts" in k]
    assert bp_corr and max(bp_corr) < -0.3

    # RASInCorrect rides with the ITLB cluster or the BP cluster — the
    # cross-component fingerprint.
    ras = next((k for k in by_name if "RASInCorrect" in k), None)
    assert ras is not None
    assert by_name[ras] < -0.3

    # Positive side: L2-miss/memory-latency events ("again suggesting the
    # DRAM memory latency is too low").  Note: the paper also finds
    # fetch-rate/IPC events positive; in this reproduction the intrinsic-IPC
    # confound (loop-heavy high-IPC workloads are exactly the ones the BP
    # bug destroys) flips that particular sign — recorded in EXPERIMENTS.md.
    memory_positive = [
        v for k, v in by_name.items()
        if k in ("l2.overall_misses", "l2.overall_miss_latency",
                 "mem_ctrls.readReqs", "l2.writebacks")
    ]
    assert memory_positive and min(memory_positive) > 0.3


def test_gem5_vs_hw_itlb_disparity(benchmark, gs_a15):
    """Section IV-C's cross-analysis: gem5 walker traffic correlates
    strongly negatively, while the HW ITLB-refill correlation is small —
    the disparity that identifies the BP (not the ITLB) as the source."""
    from repro.core.error_id import pmc_error_correlation
    from repro.events.armv7_pmu import event_name

    dataset = gs_a15.dataset
    freq = gs_a15.config.analysis_freq_hz

    def analyse():
        gem5 = gem5_error_correlation(dataset, freq)
        hw = pmc_error_correlation(dataset, freq)
        walker = next(
            (name, corr)
            for name, corr in zip(gem5.event_names, gem5.correlations)
            if "itb_walker_cache.ReadReq_accesses" in name
        )
        return walker[1], hw.correlation_of(event_name(0x02))

    gem5_walker, hw_itlb = benchmark(analyse)
    print_header("T2b: the ITLB disparity")
    print(paper_row("gem5 walker-cache accesses vs error", "strongly negative",
                    f"{gem5_walker:+.2f}"))
    print(paper_row("HW ITLB refills vs error", "small positive",
                    f"{hw_itlb:+.2f}"))
    assert gem5_walker < -0.3
    assert hw_itlb > -0.2
    assert gem5_walker < hw_itlb - 0.3
