"""Guardrail overhead: sentinel-guarded vs unguarded single-trace replay.

``--guard-level sentinel`` is the pipeline default, and the contract
(ISSUE PR 7) is that its steady-state cost on the columnar hot path stays
under 5%.  That cost has two parts:

* **per-job bookkeeping** — the guard wrapper around every replay (decode
  re-attach check, fault probe, integrity scan of the finished result),
  measured directly by timing ``SimExecutor.run`` with the guard off and
  with a sentinel plan whose sampling phase is shifted so none of the
  timed ordinals is selected;
* **amortised sentinel replays** — one scalar reference replay every
  ``SENTINEL_INTERVAL`` jobs, priced from the measured scalar cost divided
  by the interval (benchmarking 512+ jobs per repetition just to watch one
  fire would measure the same number, slowly).

Repetitions are interleaved and the minimum of each is taken to shed
scheduler noise.  Results are also emitted machine-readably to
``BENCH_guard.json`` at the repo root so the trajectory of the overhead
can be tracked across PRs.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import paper_row, print_header
from repro.sim.cpu import simulate
from repro.sim.executor import SimExecutor
from repro.sim.guard import SENTINEL_INTERVAL, GuardPlan
from repro.sim.machine import gem5_ex5_big
from repro.workloads.suites import workload_by_name
from repro.workloads.trace import compile_trace

TRACE_INSTRUCTIONS = 20_000
WORKLOAD = "mi-sha"
CALLS_PER_REP = 6
REPS = 5
OVERHEAD_BUDGET = 0.05

#: Sampling phase shifted so ordinals 0..CALLS_PER_REP-1 are never
#: sentinel-sampled: the timed loop measures pure bookkeeping, and the
#: dual-replay cost is amortised analytically below.
UNSAMPLED = GuardPlan(level="sentinel", seed=1)

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_guard.json")


def _time_executor(trace, machine, guard=None) -> float:
    """Wall seconds for CALLS_PER_REP uncached single-job replays."""
    executor = SimExecutor(jobs=1, guard=guard)
    started = time.perf_counter()
    for _ in range(CALLS_PER_REP):
        executor.run(trace, machine)
    return time.perf_counter() - started


def _time_scalar(trace, machine) -> float:
    started = time.perf_counter()
    for _ in range(CALLS_PER_REP):
        simulate(trace, machine, "scalar")
    return time.perf_counter() - started


def test_bench_guard_overhead():
    trace = compile_trace(workload_by_name(WORKLOAD), TRACE_INSTRUCTIONS)
    machine = gem5_ex5_big()

    # Warm every code path once (imports, decode, memos) before timing.
    _time_scalar(trace, machine)
    _time_executor(trace, machine)
    _time_executor(trace, machine, UNSAMPLED)

    off, guarded, scalar = [], [], []
    for _ in range(REPS):
        off.append(_time_executor(trace, machine))
        guarded.append(_time_executor(trace, machine, UNSAMPLED))
        scalar.append(_time_scalar(trace, machine))

    off_s, guarded_s, scalar_s = min(off), min(guarded), min(scalar)
    per_call_us = lambda s: s / CALLS_PER_REP * 1e6  # noqa: E731
    bookkeeping = guarded_s / off_s - 1.0
    # One scalar reference replay per SENTINEL_INTERVAL jobs, spread over
    # every job in the steady-state stream.
    amortised = (scalar_s / SENTINEL_INTERVAL) / off_s
    total = bookkeeping + amortised
    scalar_ratio = scalar_s / off_s

    print_header("Guardrail overhead: sentinel mode on the replay hot path")
    print(
        paper_row(
            f"guard off, {TRACE_INSTRUCTIONS} instrs",
            "n/a",
            f"{per_call_us(off_s):,.0f} us/call",
        )
    )
    print(
        paper_row(
            "guard sentinel (unsampled ordinals)",
            "n/a",
            f"{per_call_us(guarded_s):,.0f} us/call "
            f"(+{bookkeeping * 100:.2f}% bookkeeping)",
        )
    )
    print(
        paper_row(
            "scalar reference replay",
            "n/a",
            f"{per_call_us(scalar_s):,.0f} us/call "
            f"({scalar_ratio:.1f}x columnar)",
        )
    )
    print(
        paper_row(
            f"sentinel replay amortised over {SENTINEL_INTERVAL} jobs",
            "n/a",
            f"+{amortised * 100:.2f}%",
        )
    )
    print(
        paper_row(
            "total steady-state overhead",
            f"<{OVERHEAD_BUDGET * 100:.0f}%",
            f"{total * 100:.2f}%",
        )
    )

    payload = {
        "bench": "guard_overhead",
        "workload": WORKLOAD,
        "trace_instructions": TRACE_INSTRUCTIONS,
        "calls_per_rep": CALLS_PER_REP,
        "reps": REPS,
        "sentinel_interval": SENTINEL_INTERVAL,
        "off_seconds_per_call": off_s / CALLS_PER_REP,
        "guarded_seconds_per_call": guarded_s / CALLS_PER_REP,
        "scalar_seconds_per_call": scalar_s / CALLS_PER_REP,
        "bookkeeping_overhead_fraction": bookkeeping,
        "amortised_sentinel_fraction": amortised,
        "total_overhead_fraction": total,
        "scalar_vs_columnar_ratio": scalar_ratio,
        "budget_fraction": OVERHEAD_BUDGET,
    }
    with open(RESULTS_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # The budget guards the default pipeline configuration: sentinel mode
    # must stay in the noise next to the replay it verifies.
    assert total < OVERHEAD_BUDGET
