"""Columnar replay speedup: scalar vs columnar, one config vs DVFS sweep.

The columnar engine (ISSUE PR 6) decodes a trace once into
struct-of-arrays batches and replays it as vectorized passes, with
verified memos on the decoded form making repeat replays of the same
trace nearly free.  This benchmark measures both regimes on four
representative (workload, machine) pairs at the production trace length:

* **cold**: the first-ever replay of a trace — pays decode, the
  streaming fixpoint and memo construction;
* **steady**: replays through a reused :class:`CpuSimulator` — the
  one-trace-many-configs / DVFS-sweep regime the engine targets.

Asserted floors (the ISSUE's acceptance criteria):

* steady-state columnar replay is >=4x faster than scalar on every pair
  (the target, usually met, is >=10x);
* a decode-once DVFS sweep replays *all four* operating points in <2x
  the cost of a single cold replay (measured on distinct trace seeds so
  both timings start from an undecoded trace).

Results are emitted machine-readably to ``BENCH_replay.json`` at the
repo root so the trajectory can be tracked across PRs.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import paper_row, print_header
from repro.sim.cpu import CpuSimulator, simulate, simulate_dvfs_sweep
from repro.sim.machine import machine_by_name
from repro.workloads.suites import workload_by_name
from repro.workloads.trace import compile_trace

TRACE_INSTRUCTIONS = 60_000
PAIRS = (
    ("mi-qsort", "hw-a15"),
    ("parsec-canneal-1", "gem5-ex5-big"),
    ("mi-dijkstra", "hw-a7"),
    ("parsec-fluidanimate-4", "gem5-ex5-little"),
)
SCALAR_REPS = 2
COLUMNAR_REPS = 8
SPEEDUP_FLOOR = 4.0
SPEEDUP_TARGET = 10.0
SWEEP_BUDGET = 2.0

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_replay.json"
)


def _steady_seconds(sim: CpuSimulator, trace, reps: int) -> float:
    """Per-replay wall seconds through a warm, reused simulator."""
    sim.run(trace)  # warm state, decode and memos outside the timing
    started = time.perf_counter()
    for _ in range(reps):
        sim.run(trace)
    return (time.perf_counter() - started) / reps


def _bench_pair(workload: str, machine_name: str) -> dict:
    machine = machine_by_name(machine_name)
    profile = workload_by_name(workload)
    # Distinct seeds: each cold timing must start from an undecoded
    # trace, and the process-wide decode memo is keyed by trace identity.
    trace_single = compile_trace(profile, TRACE_INSTRUCTIONS, seed=101)
    trace_sweep = compile_trace(profile, TRACE_INSTRUCTIONS, seed=202)

    started = time.perf_counter()
    simulate(trace_single, machine, engine="columnar")
    cold_single = time.perf_counter() - started

    started = time.perf_counter()
    points = simulate_dvfs_sweep(trace_sweep, machine, engine="columnar")
    cold_sweep = time.perf_counter() - started

    scalar = _steady_seconds(
        CpuSimulator(machine, engine="scalar"), trace_single, SCALAR_REPS
    )
    columnar = _steady_seconds(
        CpuSimulator(machine, engine="columnar"), trace_single, COLUMNAR_REPS
    )

    return {
        "workload": workload,
        "machine": machine_name,
        "scalar_seconds": scalar,
        "columnar_cold_seconds": cold_single,
        "columnar_steady_seconds": columnar,
        "speedup_cold": scalar / cold_single,
        "speedup_steady": scalar / columnar,
        "dvfs_points": len(points),
        "sweep_cold_seconds": cold_sweep,
        "sweep_vs_single_cold": cold_sweep / cold_single,
    }


@pytest.mark.bench_replay
def test_bench_replay_speedup():
    rows = [_bench_pair(workload, machine) for workload, machine in PAIRS]

    print_header("Columnar replay: scalar vs columnar, 60k-instr traces")
    for row in rows:
        label = f"{row['workload']}|{row['machine']}"
        print(
            paper_row(
                label,
                f">={SPEEDUP_FLOOR:.0f}x (target {SPEEDUP_TARGET:.0f}x)",
                f"{row['scalar_seconds'] * 1e3:.1f}ms scalar -> "
                f"{row['columnar_steady_seconds'] * 1e3:.1f}ms steady "
                f"= {row['speedup_steady']:.1f}x "
                f"({row['speedup_cold']:.1f}x cold)",
            )
        )
        print(
            paper_row(
                f"  {row['dvfs_points']}-point DVFS sweep, decode-once",
                f"<{SWEEP_BUDGET:.0f}x single replay",
                f"{row['sweep_cold_seconds'] * 1e3:.1f}ms "
                f"= {row['sweep_vs_single_cold']:.2f}x",
            )
        )

    payload = {
        "bench": "replay_speedup",
        "trace_instructions": TRACE_INSTRUCTIONS,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_target": SPEEDUP_TARGET,
        "sweep_budget": SWEEP_BUDGET,
        "min_speedup_steady": min(r["speedup_steady"] for r in rows),
        "max_sweep_vs_single_cold": max(
            r["sweep_vs_single_cold"] for r in rows
        ),
        "pairs": rows,
    }
    with open(RESULTS_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for row in rows:
        label = f"{row['workload']}|{row['machine']}"
        assert row["speedup_steady"] >= SPEEDUP_FLOOR, label
        assert row["sweep_vs_single_cold"] < SWEEP_BUDGET, label
