"""T1 — headline execution-time errors (Sections I and IV).

Paper numbers reproduced in shape:

* PARSEC subset, both clusters, all DVFS levels: MAPE 25.5 %, MPE -7.5 %
* full 45-workload set, both clusters, all levels: MAPE 40 %, MPE -21 %
* Cortex-A7 model at 1 GHz: MAPE 20 %, MPE +8.5 %
* Cortex-A15 model at 1 GHz: MAPE 59 %, MPE -51 %
"""

import numpy as np

from benchmarks.conftest import ANALYSIS_FREQ, paper_row, print_header


def _combined(datasets, suites=None):
    hw, gem5 = [], []
    for dataset in datasets:
        runs = dataset.runs
        if suites is not None:
            runs = [r for r in runs if r.suite in suites]
        hw.extend(r.hw_time for r in runs)
        gem5.extend(r.gem5_time for r in runs)
    hw, gem5 = np.asarray(hw), np.asarray(gem5)
    pe = (hw - gem5) / hw * 100.0
    return float(np.abs(pe).mean()), float(pe.mean())


def test_headline_execution_time_errors(benchmark, gs_a15, gs_a7):
    a15, a7 = gs_a15.dataset, gs_a7.dataset

    def analyse():
        return {
            "parsec": _combined([a15, a7], suites=("parsec",)),
            "all": _combined([a15, a7]),
            "a7_1ghz": (a7.time_mape(ANALYSIS_FREQ), a7.time_mpe(ANALYSIS_FREQ)),
            "a15_1ghz": (a15.time_mape(ANALYSIS_FREQ), a15.time_mpe(ANALYSIS_FREQ)),
        }

    result = benchmark(analyse)

    print_header("T1: headline execution-time errors")
    print(paper_row("PARSEC (both clusters, all OPPs) MAPE/MPE",
                    "25.5% / -7.5%",
                    f"{result['parsec'][0]:.1f}% / {result['parsec'][1]:+.1f}%"))
    print(paper_row("45 workloads (both clusters, all OPPs)",
                    "40% / -21%",
                    f"{result['all'][0]:.1f}% / {result['all'][1]:+.1f}%"))
    print(paper_row("Cortex-A7 model @ 1 GHz",
                    "20% / +8.5%",
                    f"{result['a7_1ghz'][0]:.1f}% / {result['a7_1ghz'][1]:+.1f}%"))
    print(paper_row("Cortex-A15 model @ 1 GHz",
                    "59% / -51%",
                    f"{result['a15_1ghz'][0]:.1f}% / {result['a15_1ghz'][1]:+.1f}%"))

    # Shape assertions: signs and orderings from the paper.
    assert result["a15_1ghz"][1] < -25, "A15 model must overestimate time"
    assert result["a7_1ghz"][1] > 0, "A7 model must underestimate time"
    assert result["a15_1ghz"][0] > result["a7_1ghz"][0], "A15 model less accurate"
    assert abs(result["parsec"][1]) < abs(result["all"][1]) + 15, (
        "PARSEC-only MPE is milder than the diverse 45-workload MPE"
    )


def test_mpe_becomes_more_positive_with_frequency(benchmark, gs_a15, gs_a7):
    """'the MPE on both the Cortex-A7 and Cortex-A15 becomes gradually more
    positive with frequency'."""
    def analyse():
        return {
            "A15": [gs_a15.dataset.time_mpe(f) for f in gs_a15.dataset.frequencies],
            "A7": [gs_a7.dataset.time_mpe(f) for f in gs_a7.dataset.frequencies],
        }

    result = benchmark(analyse)
    print_header("T1b: MPE vs frequency")
    for core, series in result.items():
        print(f"  {core}: " + " -> ".join(f"{v:+.1f}%" for v in series))
        assert series[-1] > series[0], f"{core} MPE must grow with frequency"
