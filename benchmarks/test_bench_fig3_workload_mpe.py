"""Fig. 3 — per-workload execution-time MPE, ordered by HCA cluster.

Paper observations reproduced:

1. the MPE varies significantly between workloads;
2. workloads of the same cluster exhibit similar MPEs;
3. workloads with extreme MPEs isolate into (near-)singleton clusters;
4. the worst workload is ``par-basicmath-rad2deg`` (MPE -268 % at 1 GHz).
"""

import numpy as np

from benchmarks.conftest import paper_row, print_header
from repro.core.error_id import cluster_workloads
from repro.core.report import render_workload_mpe_figure


def test_fig3_workload_mpe_by_cluster(benchmark, gs_a15):
    dataset = gs_a15.dataset
    freq = gs_a15.config.analysis_freq_hz

    analysis = benchmark(
        lambda: cluster_workloads(dataset, freq, n_clusters=16)
    )

    print_header("Fig. 3: per-workload MPE by HCA cluster (A15 @ 1 GHz)")
    print(render_workload_mpe_figure(analysis))

    name, cluster, error = analysis.extreme_workload()
    print(paper_row("worst workload", "par-basicmath-rad2deg -268%",
                    f"{name} {error:+.0f}%"))

    # Observation 1: wide MPE spread.
    assert analysis.errors.max() - analysis.errors.min() > 100

    # Observation 2: within-cluster MPE spread is smaller than the global
    # spread for most clusters.
    global_std = float(np.std(analysis.errors))
    labels = np.asarray(analysis.clusters.labels)
    tighter = 0
    multi = 0
    for c in range(1, analysis.clusters.n_clusters + 1):
        members = analysis.errors[labels == c]
        if len(members) >= 2:
            multi += 1
            if float(np.std(members)) < global_std:
                tighter += 1
    assert tighter >= 0.7 * multi

    # Observations 3 and 4: the extreme workload is the paper's, isolated.
    assert name in ("par-basicmath-rad2deg", "par-basicmath-deg2rad")
    assert error < -150
    assert len(analysis.clusters.members(cluster)) <= 3


def test_fig3_cluster_mpe_spread(benchmark, gs_a15):
    """Cluster-level annotations like the paper's '+47 %', '-66 %', '-3 %'."""
    dataset = gs_a15.dataset
    freq = gs_a15.config.analysis_freq_hz
    analysis = cluster_workloads(dataset, freq, n_clusters=16)

    table = benchmark(analysis.cluster_mpe)

    print_header("Fig. 3 annotations: per-cluster MPE")
    for cluster, value in sorted(table.items()):
        members = analysis.clusters.members(cluster)
        print(f"  cluster {cluster:>2d} ({len(members):>2d} wl): {value:+7.1f}%   "
              f"e.g. {members[0]}")
    values = list(table.values())
    # Both positive and strongly negative clusters exist, as in Fig. 3.
    assert max(values) > 0
    assert min(values) < -60
