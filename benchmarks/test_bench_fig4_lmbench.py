"""Fig. 4 — lmbench memory latency (stride 256) on hardware vs model.

Paper findings reproduced:

* the model's DRAM latency is too low (both clusters);
* the gem5 Cortex-A7 L2 hit latency is too high;
* the L1 regions match closely.
"""

from benchmarks.conftest import paper_row, print_header
from repro.sim.machine import (
    gem5_ex5_big,
    gem5_ex5_little,
    hardware_a7,
    hardware_a15,
)
from repro.workloads.microbench import memory_latency_sweep

SIZES = (4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)


def _curve(machine):
    return memory_latency_sweep(machine, sizes_kb=SIZES, n_instrs=30_000)


def test_fig4_memory_latency_a15(benchmark):
    hw = _curve(hardware_a15())
    model = benchmark(lambda: _curve(gem5_ex5_big()))

    print_header("Fig. 4: lat_mem_rd stride 256 (A15)")
    print(f"  {'size':>10s} {'HW ns':>8s} {'model ns':>9s}")
    for h, m in zip(hw, model):
        print(f"  {h.size_kb:>7d}KiB {h.ns_per_access:>8.1f} {m.ns_per_access:>9.1f}")

    l1_hw, l1_model = hw[1].ns_per_access, model[1].ns_per_access
    dram_hw, dram_model = hw[-1].ns_per_access, model[-1].ns_per_access
    print(paper_row("L1 region", "model ~= HW", f"{l1_model:.1f} vs {l1_hw:.1f} ns"))
    print(paper_row("DRAM region", "model < HW (too low)",
                    f"{dram_model:.1f} vs {dram_hw:.1f} ns"))

    assert abs(l1_model - l1_hw) / l1_hw < 0.2, "L1 latencies must match"
    assert dram_model < 0.85 * dram_hw, "model DRAM latency must be too low"


def test_fig4_memory_latency_a7(benchmark):
    hw = _curve(hardware_a7())
    model = benchmark(lambda: _curve(gem5_ex5_little()))

    print_header("Fig. 4: lat_mem_rd stride 256 (A7)")
    print(f"  {'size':>10s} {'HW ns':>8s} {'model ns':>9s}")
    for h, m in zip(hw, model):
        print(f"  {h.size_kb:>7d}KiB {h.ns_per_access:>8.1f} {m.ns_per_access:>9.1f}")

    # L2-resident probe (between 32 KiB L1 and 512 KiB L2).
    l2_index = SIZES.index(256)
    l2_hw = hw[l2_index].ns_per_access
    l2_model = model[l2_index].ns_per_access
    print(paper_row("A7 L2 region", "model > HW (too high)",
                    f"{l2_model:.1f} vs {l2_hw:.1f} ns"))
    print(paper_row("A7 DRAM region", "model < HW (too low)",
                    f"{model[-1].ns_per_access:.1f} vs {hw[-1].ns_per_access:.1f} ns"))

    assert l2_model > 1.3 * l2_hw, "A7 model L2 latency must be too high"
    assert model[-1].ns_per_access < 0.8 * hw[-1].ns_per_access

    # Both curves are monotone staircases in array size.
    for curve in (hw, model):
        values = [p.ns_per_access for p in curve]
        assert all(b >= a - 0.5 for a, b in zip(values, values[1:]))
