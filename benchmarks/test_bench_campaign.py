"""Campaign scaling: one board drained by 1, 2 and 4 shard processes.

The campaign layer (ISSUE PR 9) exists to scale the validation sweep
past one process pool, so its benchmark is a scaling curve: the same
job set (8 workloads x hw/gem5) drained from a fresh board by 1, 2 and
4 shards, coordinator collation disabled so the timing is pure
board-protocol plus simulation.

Asserted floor (the ISSUE's acceptance criterion): 2 shards complete
the board >=1.5x faster than 1 shard on any machine with >=2 cores.
The 4-shard point is reported but not gated — 6+ cores are not a given
in CI.

Results are emitted machine-readably to ``BENCH_campaign.json`` at the
repo root so the trajectory can be tracked across PRs.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import paper_row, print_header
from repro.core.pipeline import GemStoneConfig
from repro.sim.campaign import run_campaign
from repro.sim.executor import RetryPolicy
from repro.workloads.suites import workload_by_name

TRACE_INSTRUCTIONS = 30_000
WORKLOADS = (
    "mi-sha", "mi-qsort", "mi-fft", "mi-dijkstra", "mi-bitcount",
    "dhrystone", "whetstone", "mi-crc32",
)
SHARD_COUNTS = (1, 2, 4)
TWO_SHARD_FLOOR = 1.5

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_campaign.json"
)


def _config() -> GemStoneConfig:
    profiles = tuple(workload_by_name(name) for name in WORKLOADS)
    return GemStoneConfig(
        core="A15",
        workloads=profiles,
        power_workloads=profiles,
        trace_instructions=TRACE_INSTRUCTIONS,
        retry=RetryPolicy(max_attempts=2, base_seconds=0.0),
        engine="scalar",
        guard_level="off",
    )


def _drain_seconds(board_dir: str, shards: int) -> tuple[float, dict]:
    started = time.perf_counter()
    result = run_campaign(
        _config(), board_dir, shards=shards, ttl_seconds=30.0,
        poll_seconds=0.01, collate=False,
    )
    elapsed = time.perf_counter() - started
    assert not result.degraded
    assert result.status["done"] == result.status["total"]
    return elapsed, result.status


@pytest.mark.dist
def test_bench_campaign_scaling(tmp_path):
    rows = []
    for shards in SHARD_COUNTS:
        # A fresh board per point: every run pays the same sync, claim
        # and simulation costs from zero.
        elapsed, status = _drain_seconds(
            str(tmp_path / f"board-{shards}"), shards
        )
        rows.append(
            {
                "shards": shards,
                "seconds": elapsed,
                "jobs": status["total"],
            }
        )

    serial = rows[0]["seconds"]
    print_header(
        f"Campaign scaling: {rows[0]['jobs']} jobs, "
        f"{TRACE_INSTRUCTIONS // 1000}k-instr traces"
    )
    for row in rows:
        row["speedup"] = serial / row["seconds"]
        print(
            paper_row(
                f"{row['shards']} shard(s)",
                f">={TWO_SHARD_FLOOR}x at 2" if row["shards"] == 2 else "-",
                f"{row['seconds']:.2f}s = {row['speedup']:.2f}x",
            )
        )

    cores = os.cpu_count() or 1
    two_shard = next(r for r in rows if r["shards"] == 2)

    payload = {
        "bench": "campaign_scaling",
        "trace_instructions": TRACE_INSTRUCTIONS,
        "jobs": rows[0]["jobs"],
        "cpu_count": cores,
        "cpu_gated": True,
        "gate_enforced": cores >= 2,
        "two_shard_floor": TWO_SHARD_FLOOR,
        "two_shard_speedup": two_shard["speedup"],
        "points": rows,
    }
    with open(RESULTS_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Gate after the snapshot is on disk so a miss still leaves evidence.
    if cores >= 2:
        assert two_shard["speedup"] >= TWO_SHARD_FLOOR, (
            f"2-shard campaign only {two_shard['speedup']:.2f}x faster "
            f"than serial on {cores} cores (floor {TWO_SHARD_FLOOR}x)"
        )
