"""Fig. 6 — gem5 event totals normalised to their HW PMC equivalents.

Paper numbers reproduced in shape (mean of per-workload ratios, extreme
cluster excluded from the mean as in the figure):

* instructions committed (0x08): ~1.0x
* ITLB refills (0x02): 0.06x — far fewer in the model
* DTLB refills (0x05): 1.7x
* predicted branches (0x12): 1.1x, consistent across clusters
* branch mispredictions (0x10): 21x mean, ~1402x for the extreme cluster
* L1I accesses (0x14): ~2x (per-instruction counting)
* L1D_CACHE_REFILL_WR (0x43): 9.9x, L1D_WB (0x15): 19x
* BP accuracy: 96 % hardware vs 65 % model; the workload with the lowest
  model accuracy (0.86 %) is the most predictable on hardware (99.9 %).
"""

import numpy as np

from benchmarks.conftest import paper_row, print_header
from repro.core.error_id import cluster_workloads
from repro.core.event_compare import compare_events
from repro.core.report import render_event_ratio_table


def test_fig6_event_ratios(benchmark, gs_a15):
    dataset = gs_a15.dataset
    freq = gs_a15.config.analysis_freq_hz
    clusters = cluster_workloads(dataset, freq, n_clusters=16)

    comparison = benchmark(lambda: compare_events(dataset, freq, clusters))

    print_header("Fig. 6: gem5 / HW event ratios (A15 @ 1 GHz)")
    print(render_event_ratio_table(comparison))

    rows = [
        (0x08, "instructions", 1.0, 0.9, 1.1),
        (0x02, "ITLB refills", 0.06, 0.0, 0.6),
        (0x05, "DTLB refills", 1.7, 0.7, 4.0),
        (0x12, "predicted branches", 1.1, 0.85, 1.6),
        (0x14, "L1I accesses", 2.0, 1.4, 8.0),
    ]
    for event, label, paper, low, high in rows:
        measured = comparison.ratio(event)
        print(paper_row(f"0x{event:02X} {label}", f"{paper:g}x", f"{measured:.2f}x"))
        assert low <= measured <= high, (label, measured)

    mispredicts = comparison.ratio(0x10)
    extreme = max(comparison.ratios[0x10].per_workload.values())
    print(paper_row("0x10 mispredictions (mean)", "21x", f"{mispredicts:.1f}x"))
    print(paper_row("0x10 mispredictions (extreme workload)", "1402x",
                    f"{extreme:.0f}x"))
    assert mispredicts > 4.0
    assert extreme > 50.0

    writebacks = comparison.ratio(0x15)
    refill_wr = comparison.ratio(0x43)
    print(paper_row("0x15 L1D write-backs", "19x", f"{writebacks:.1f}x"))
    print(paper_row("0x43 L1D refills (write)", "9.9x", f"{refill_wr:.1f}x"))
    assert writebacks > 1.1
    assert refill_wr > 1.0


def test_fig6_bp_accuracy_inversion(benchmark, gs_a15):
    dataset = gs_a15.dataset
    freq = gs_a15.config.analysis_freq_hz
    clusters = cluster_workloads(dataset, freq, n_clusters=16)
    comparison = compare_events(dataset, freq, clusters)

    hw_acc, gem5_acc = benchmark(comparison.mean_bp_accuracy)

    print_header("Fig. 6 detail: branch predictor accuracy")
    print(paper_row("mean accuracy HW / model", "96% / 65%",
                    f"{hw_acc:.1%} / {gem5_acc:.1%}"))
    extreme = comparison.extreme_bp_workload()
    print(paper_row("lowest model accuracy",
                    "0.86% (par-basicmath-rad2deg, HW 99.9%)",
                    f"{extreme.gem5_accuracy:.2%} ({extreme.workload}, "
                    f"HW {extreme.hw_accuracy:.2%})"))

    assert hw_acc > 0.88
    assert 0.45 < gem5_acc < 0.85
    assert extreme.gem5_accuracy < 0.15
    assert extreme.hw_accuracy > 0.97
    assert extreme.workload in (
        "par-basicmath-rad2deg", "par-basicmath-deg2rad"
    )


def test_fig6_itlb_vs_dtlb_disparity(benchmark, gs_a15):
    """Section IV-F: the model's ITLB refills collapse (64 vs 32 entries)
    while its DTLB refills stay in the same league as hardware — the
    asymmetry that exposes the TLB-hierarchy specification error."""
    dataset = gs_a15.dataset
    freq = gs_a15.config.analysis_freq_hz
    clusters = cluster_workloads(dataset, freq, n_clusters=16)
    comparison = compare_events(dataset, freq, clusters)

    itlb, dtlb = benchmark(
        lambda: (comparison.ratio(0x02), comparison.ratio(0x05))
    )
    print_header("Fig. 6 detail: ITLB vs DTLB refill ratios")
    print(paper_row("ITLB refills (0x02)", "0.06x", f"{itlb:.3f}x"))
    print(paper_row("DTLB refills (0x05)", "1.7x", f"{dtlb:.2f}x"))
    assert itlb < 0.5
    assert dtlb > 0.5
    assert dtlb > 5 * max(itlb, 1e-6)
