"""T4 — the empirical power models (Section V), plus the A2 restraint
ablation.

Paper numbers reproduced in shape:

* Cortex-A15 final (gem5-restrained) model: MAPE 3.28 %, SER 0.049 W,
  adjusted R^2 0.996, mean VIF ~6, worst observation 14 %;
* Cortex-A7 model: MAPE 6.64 %, SER 0.014 W, adjusted R^2 0.992;
* the unrestricted baseline selection reaches a (slightly) better fit than
  the gem5-restrained one — the paper's trade-off;
* 0x11 CPU_CYCLES is the dominant selected event, and the A15 selection
  includes the multicollinearity-reducing 0x1B-0x73 difference.
"""

from benchmarks.conftest import paper_row, print_header
from repro.core.power_model import PowerModelBuilder, restraint_pool_gem5
from repro.core.report import render_power_model_summary


def test_a15_power_model(benchmark, gs_a15):
    observations = gs_a15.power_dataset

    def build():
        builder = PowerModelBuilder(
            "A15", excluded_events=restraint_pool_gem5("A15"), max_terms=7
        )
        return builder.fit(observations)

    model = benchmark.pedantic(build, rounds=1, iterations=1)
    quality = model.quality

    print_header("T4: Cortex-A15 empirical power model")
    print(render_power_model_summary(model))
    print(paper_row("MAPE", "3.28%", f"{quality.mape:.2f}%"))
    print(paper_row("SER", "0.049 W", f"{quality.ser:.3f} W"))
    print(paper_row("adjusted R^2", "0.996", f"{quality.adjusted_r2:.4f}"))
    print(paper_row("mean VIF", "~6", f"{quality.mean_vif:.1f}"))
    print(paper_row("max observation APE", "14%", f"{quality.max_ape:.1f}%"))

    assert quality.mape < 6.0
    assert quality.adjusted_r2 > 0.99
    assert quality.mean_vif < 15.0
    assert quality.max_ape < 25.0
    assert model.terms[0].positive == 0x11, "0x11 must dominate"
    assert len(model.terms) >= 4


def test_a7_power_model(benchmark, gs_a7):
    observations = gs_a7.power_dataset

    def build():
        builder = PowerModelBuilder(
            "A7", excluded_events=restraint_pool_gem5("A7"), max_terms=7
        )
        return builder.fit(observations)

    model = benchmark.pedantic(build, rounds=1, iterations=1)
    quality = model.quality

    print_header("T4: Cortex-A7 empirical power model")
    print(render_power_model_summary(model))
    print(paper_row("MAPE", "6.64%", f"{quality.mape:.2f}%"))
    print(paper_row("SER", "0.014 W", f"{quality.ser:.3f} W"))
    print(paper_row("adjusted R^2", "0.992", f"{quality.adjusted_r2:.4f}"))

    assert quality.mape < 8.0
    assert quality.adjusted_r2 > 0.98
    assert quality.ser < 0.05
    # The A7 absolute residual is far smaller than the A15's (a ~0.5 W
    # cluster vs a ~4 W cluster).
    assert quality.ser < 0.5


def test_a2_restraint_pool_ablation(benchmark, gs_a15):
    """Section V: removing gem5-incompatible events costs a little accuracy
    ('caused some degradation of the model but its accuracy ... still
    within an acceptable level')."""
    observations = gs_a15.power_dataset

    def build_both():
        restrained = PowerModelBuilder(
            "A15", excluded_events=restraint_pool_gem5("A15"), max_terms=7
        ).fit(observations)
        unrestricted = PowerModelBuilder("A15", max_terms=7).fit(observations)
        return restrained, unrestricted

    restrained, unrestricted = benchmark.pedantic(build_both, rounds=1, iterations=1)

    print_header("A2: restraint-pool ablation")
    print(paper_row("unrestricted MAPE", "4% (different selection)",
                    f"{unrestricted.quality.mape:.2f}%"))
    print(paper_row("gem5-restrained MAPE", "3.28%",
                    f"{restrained.quality.mape:.2f}%"))
    print("  unrestricted events: " +
          ", ".join(t.name for t in unrestricted.terms))
    print("  restrained events:   " +
          ", ".join(t.name for t in restrained.terms))

    # The restrained model must stay usable (within ~2x of unrestricted).
    assert restrained.quality.mape < max(2.0 * unrestricted.quality.mape, 6.0)
    # And every restrained event must have a gem5 equivalent.
    from repro.core.power_model import PowerModelApplication
    PowerModelApplication(restrained)  # must not raise


def test_published_coefficients_degrade_on_new_board(benchmark, gs_a15):
    """Section V's first check: applying the *published* coefficients to a
    different board's data degrades accuracy (5.6 % vs the quoted 2.8 %),
    and re-tuning the coefficients on local data restores it.

    Simulated here by fitting coefficients on one half of the OPP sweep and
    evaluating on the other (coefficients from 'another board's conditions')
    versus fitting and evaluating on the same OPPs.
    """
    from repro.core.power_model import validate_power_model

    observations = gs_a15.power_dataset
    freqs = sorted({round(o.freq_hz) for o in observations})
    half_a = [o for o in observations if round(o.freq_hz) in freqs[:2]]
    half_b = [o for o in observations if round(o.freq_hz) in freqs[2:]]

    def analyse():
        builder = PowerModelBuilder(
            "A15", excluded_events=restraint_pool_gem5("A15"), max_terms=5
        )
        terms = builder.select_events(observations)
        # "Published" coefficients: trained only on conditions A, then the
        # per-OPP models are reused after re-tuning on the full data.
        foreign = builder.fit(half_a, terms=terms)
        retuned = builder.fit(observations, terms=terms)
        foreign_quality = validate_power_model(retuned, half_b)
        return foreign, retuned, foreign_quality

    foreign, retuned, _ = benchmark.pedantic(analyse, rounds=1, iterations=1)
    print_header("T4b: published vs re-tuned coefficients")
    print(paper_row("re-tuned on local data", "2.8%",
                    f"{retuned.quality.mape:.2f}%"))
    assert retuned.quality.mape < 6.0
