"""Observability overhead: traced vs untraced single-trace replay.

Tracing is disabled by default everywhere, and the contract (ISSUE PR 5)
is that the instrumentation left behind in the hot path — null-span
context managers and one ``enabled`` check per probe point — costs less
than 5% on the single-trace replay path.  This benchmark times
``SimExecutor.run`` for one (trace, machine) job with the default
disabled tracer and with a fully enabled in-memory tracer, interleaving
repetitions and taking the minimum of each to shed scheduler noise, then
asserts the enabled/disabled ratio stays under the budget (with the raw
``simulate`` loop printed as the uninstrumented reference).

Results are also emitted machine-readably to ``BENCH_obs.json`` at the
repo root so the trajectory of the overhead can be tracked across PRs.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import paper_row, print_header
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.sim.cpu import simulate
from repro.sim.executor import SimExecutor
from repro.sim.machine import gem5_ex5_big
from repro.workloads.suites import workload_by_name
from repro.workloads.trace import compile_trace

TRACE_INSTRUCTIONS = 20_000
WORKLOAD = "mi-sha"
CALLS_PER_REP = 6
REPS = 5
OVERHEAD_BUDGET = 0.05

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs.json")


def _time_executor(trace, machine, tracer=None) -> float:
    """Wall seconds for CALLS_PER_REP uncached single-job replays."""
    executor = (
        SimExecutor(jobs=1)
        if tracer is None
        else SimExecutor(jobs=1, tracer=tracer, metrics=tracer.metrics)
    )
    started = time.perf_counter()
    for _ in range(CALLS_PER_REP):
        executor.run(trace, machine)
    return time.perf_counter() - started


def _time_raw(trace, machine) -> float:
    started = time.perf_counter()
    for _ in range(CALLS_PER_REP):
        simulate(trace, machine)
    return time.perf_counter() - started


def test_bench_obs_overhead():
    trace = compile_trace(workload_by_name(WORKLOAD), TRACE_INSTRUCTIONS)
    machine = gem5_ex5_big()

    # Warm every code path once (imports, first-call caches) before timing.
    _time_raw(trace, machine)
    registry = MetricsRegistry()
    _time_executor(trace, machine)
    _time_executor(trace, machine, Tracer(enabled=True, metrics=registry))

    raw, disabled, enabled = [], [], []
    for _ in range(REPS):
        raw.append(_time_raw(trace, machine))
        disabled.append(_time_executor(trace, machine))
        enabled.append(
            _time_executor(
                trace, machine, Tracer(enabled=True, metrics=MetricsRegistry())
            )
        )

    raw_s, disabled_s, enabled_s = min(raw), min(disabled), min(enabled)
    per_call_us = lambda s: s / CALLS_PER_REP * 1e6  # noqa: E731
    enabled_overhead = enabled_s / disabled_s - 1.0
    harness_overhead = disabled_s / raw_s - 1.0

    print_header("Observability overhead: single-trace replay hot path")
    print(
        paper_row(
            f"raw simulate(), {TRACE_INSTRUCTIONS} instrs",
            "n/a",
            f"{per_call_us(raw_s):,.0f} us/call",
        )
    )
    print(
        paper_row(
            "executor, tracing disabled (default)",
            "n/a",
            f"{per_call_us(disabled_s):,.0f} us/call "
            f"(+{harness_overhead * 100:.1f}% vs raw)",
        )
    )
    print(
        paper_row(
            "executor, tracing enabled",
            "n/a",
            f"{per_call_us(enabled_s):,.0f} us/call",
        )
    )
    print(
        paper_row(
            "enabled-vs-disabled overhead",
            f"<{OVERHEAD_BUDGET * 100:.0f}%",
            f"{enabled_overhead * 100:.2f}%",
        )
    )

    payload = {
        "bench": "obs_overhead",
        "workload": WORKLOAD,
        "trace_instructions": TRACE_INSTRUCTIONS,
        "calls_per_rep": CALLS_PER_REP,
        "reps": REPS,
        "raw_seconds_per_call": raw_s / CALLS_PER_REP,
        "disabled_seconds_per_call": disabled_s / CALLS_PER_REP,
        "enabled_seconds_per_call": enabled_s / CALLS_PER_REP,
        "enabled_overhead_fraction": enabled_overhead,
        "disabled_vs_raw_fraction": harness_overhead,
        "budget_fraction": OVERHEAD_BUDGET,
    }
    with open(RESULTS_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # The budget guards the *instrumentation*: even fully enabled, spans
    # must stay in the noise next to a 20k-instruction replay.
    assert enabled_overhead < OVERHEAD_BUDGET
