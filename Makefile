PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-smoke

# Tier-1: the full unit/integration suite.
test:
	$(PYTHON) -m pytest -x -q

# One tiny parallel collection end-to-end (pool + disk cache + dataset),
# so executor regressions surface without the full benchmark suite.
bench-smoke:
	$(PYTHON) -m pytest -q -m bench_smoke tests/sim/test_executor.py

# Full paper-figure benchmark suite, including the throughput benchmark.
bench:
	$(PYTHON) -m pytest -q -s benchmarks
