PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-chaos bench bench-smoke

# Tier-1: the full unit/integration suite (includes the chaos scenarios).
test:
	$(PYTHON) -m pytest -x -q

# Deterministic fault-injection scenarios only: worker crashes, hangs,
# poisoned jobs, cache corruption, power-sample loss — each must recover
# to bit-identical results with the losses enumerated in the telemetry.
test-chaos:
	$(PYTHON) -m pytest -q -m chaos

# One tiny parallel collection end-to-end (pool + disk cache + dataset),
# so executor regressions surface without the full benchmark suite.
bench-smoke:
	$(PYTHON) -m pytest -q -m bench_smoke tests/sim/test_executor.py

# Full paper-figure benchmark suite, including the throughput benchmark.
bench:
	$(PYTHON) -m pytest -q -s benchmarks
