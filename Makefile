PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-chaos test-dist trace-smoke trace-campaign-smoke bench bench-smoke bench-replay bench-guard bench-campaign bench-lint bench-prof lint check

# Tier-1: the full unit/integration suite (includes the chaos scenarios).
test:
	$(PYTHON) -m pytest -x -q

# Deterministic fault-injection scenarios only: worker crashes, hangs,
# poisoned jobs, cache corruption, power-sample loss, and the columnar
# guardrail scenarios (corrupt decoded columns, poisoned memos, NaN
# passes, worker OOM, poison-job circuit breaking) — each must recover
# to bit-identical results with the losses enumerated in the telemetry
# and every guard intervention recorded in the collection health.
# Includes the checkpoint/resume scenarios: the pipeline is killed after
# every phase (including through a guard-triggered fallback) and the
# --resume run must produce a byte-identical report.
test-chaos:
	$(PYTHON) -m pytest -q -m chaos

# Distributed-campaign scenarios only: shard crashes between the store
# write and the done marker, SIGKILLed workers, leases expiring under
# live workers, poison jobs crossing shards, coordinators killed and
# resumed, corrupted store entries — each must converge to a dataset
# bit-identical to a serial run with no duplicated results.
test-dist:
	$(PYTHON) -m pytest -q -m dist tests

# Observability smoke: one tiny traced pipeline run end-to-end, asserting
# the exported Chrome trace validates, tracing never changes a report
# byte, and the span tree is deterministic modulo wall-clock.
trace-smoke:
	$(PYTHON) -m pytest -q -m obs tests/obs/test_trace_smoke.py

# Campaign observability smoke: a traced two-shard campaign stitched into
# one Chrome trace with per-shard tracks, merged Prometheus counters that
# equal the journal counts, and a clean report byte-identical to the
# untraced run — including the kill/steal/resume stitching scenarios.
trace-campaign-smoke:
	$(PYTHON) -m pytest -q -m dist tests/sim/test_chaos_campaign.py -k TraceStitching

# One tiny parallel collection end-to-end (pool + disk cache + dataset),
# so executor regressions surface without the full benchmark suite.
bench-smoke:
	$(PYTHON) -m pytest -q -m bench_smoke tests/sim/test_executor.py

# Columnar replay speedup floor: scalar vs columnar and the decode-once
# DVFS sweep, asserting the >=4x steady-state floor and refreshing
# BENCH_replay.json at the repo root.
bench-replay:
	$(PYTHON) -m pytest -q -s -m bench_replay benchmarks/test_bench_replay_speedup.py

# Guardrail overhead: sentinel-mode bookkeeping plus the amortised
# dual-engine replay must stay under the 5% budget; refreshes
# BENCH_guard.json at the repo root.
bench-guard:
	$(PYTHON) -m pytest -q -s benchmarks/test_bench_guard_overhead.py

# Campaign scaling curve: one board drained by 1/2/4 shards, asserting
# the 2-shard >=1.5x floor on multi-core hosts and refreshing
# BENCH_campaign.json at the repo root.
bench-campaign:
	$(PYTHON) -m pytest -q -s benchmarks/test_bench_campaign.py

# Lint-engine throughput: serial vs parallel per-file phase and cold vs
# warm incremental cache over the real tree; asserts the warm-cache
# speedup floor and refreshes BENCH_lint.json at the repo root.
bench-lint:
	$(PYTHON) -m pytest -q -s -m bench_lint benchmarks/test_bench_lint.py

# Replay-profiler overhead: traced+profiled columnar replay must stay
# within the 5% budget of the untraced hot path while attributing >=95%
# of simulated cycles; refreshes BENCH_prof.json at the repo root.
bench-prof:
	$(PYTHON) -m pytest -q -s benchmarks/test_bench_profiler_overhead.py

# Full paper-figure benchmark suite, including the throughput benchmark.
bench:
	$(PYTHON) -m pytest -q -s benchmarks

# Static analysis gate: ruff (style/imports) and mypy (types) when they are
# installed, then the project's own determinism & worker-purity linter
# (always; `repro-lint --format json` emits machine-readable findings for
# CI annotation).  Known-bad rule fixtures are excluded by construction.
# repro-lint runs with the parallel per-file phase and the content-hash
# incremental cache (.lint-cache/) by default; findings are byte-identical
# to a cold serial run, and LINT_NO_CACHE=1 forces one for debugging.
LINT_OPTS = --jobs 0 --cache-dir .lint-cache
ifdef LINT_NO_CACHE
LINT_OPTS =
endif
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else echo "ruff not installed; skipping style/import checks"; fi
	@if command -v mypy >/dev/null 2>&1; then \
		MYPYPATH=src mypy -p repro.analysis; \
	else echo "mypy not installed; skipping type checks"; fi
	$(PYTHON) -m repro.analysis src tests benchmarks examples \
		--exclude tests/analysis/fixtures $(LINT_OPTS)

# Full local PR gate: static analysis plus the tier-1 suite.
check: lint test
