#!/usr/bin/env python
"""Building an empirical PMC power model, Section V style.

Walks the full Powmon-derived workflow:

1. characterise power and PMC rates over the 65-workload set and the DVFS
   sweep (Experiments 3 and 4);
2. select model events by stepwise adjusted-R^2 with a VIF restraint, once
   unrestricted and once restricted to events with reliable gem5
   equivalents (the paper's restraint pools);
3. fit per-OPP models, validate against the platform, and compare against
   a McPAT-style analytical baseline;
4. emit the run-time power equations GemStone would splice into gem5.

Run:  python examples/build_power_model.py
"""

import numpy as np

from repro.core.power_model import (
    PowerModelApplication,
    PowerModelBuilder,
    collect_power_dataset,
    restraint_pool_gem5,
)
from repro.core.report import render_power_model_summary
from repro.power_baselines.mcpat_like import McPatLikeModel
from repro.sim.platform import HardwarePlatform
from repro.workloads.suites import power_modelling_workloads

CORE = "A15"

platform = HardwarePlatform(CORE, trace_instructions=20_000)
workloads = power_modelling_workloads()[::2]  # half the set, for speed
print(f"Characterising {len(workloads)} workloads across the DVFS sweep...")
observations = collect_power_dataset(platform, workloads)
print(f"  {len(observations)} (workload, OPP) power observations\n")

# --- Unrestricted vs gem5-restrained selection ------------------------------
for label, excluded in (
    ("unrestricted", frozenset()),
    ("gem5-restrained", restraint_pool_gem5(CORE)),
):
    builder = PowerModelBuilder(CORE, excluded_events=excluded, max_terms=7)
    model = builder.fit(observations)
    print(f"[{label}]")
    print(render_power_model_summary(model))
    print()
    if excluded:
        final_model = model

# --- Against the analytical baseline ----------------------------------------
mcpat = McPatLikeModel(CORE)
apes = []
for obs in observations:
    rates = {
        "cycles": obs.rates[0x11],
        "instructions": obs.rates[0x08],
        "l1_accesses": obs.rates[0x04] + obs.rates[0x14],
        "l2_accesses": obs.rates[0x16],
        "dram_accesses": obs.rates[0x19],
        "fp_ops": obs.rates.get(0x75, 0.0) + obs.rates.get(0x74, 0.0),
    }
    predicted = mcpat.estimate(rates, obs.voltage, obs.freq_hz, obs.threads)
    apes.append(abs(obs.power_w - predicted) / obs.power_w * 100.0)
print(
    f"McPAT-style analytical baseline MAPE: {np.mean(apes):.1f}% "
    f"(vs {final_model.quality.mape:.2f}% for the fitted empirical model)\n"
)

# --- Application + runtime equations ----------------------------------------
application = PowerModelApplication(final_model, platform.opps)
sample = platform.characterize(workloads[0], 1400e6)
estimate = application.apply_to_hw(sample)
print(
    f"Sanity: {sample.workload} @ 1400 MHz — sensor {sample.power_w:.3f} W, "
    f"model {estimate.power_w:.3f} W"
)
print("\nRun-time power equations for gem5 (Fig. 2 output):")
print(final_model.gem5_equations())
