#!/usr/bin/env python
"""Validating a simulator change, Section VII style.

The motivating scenario of the paper: gem5 is continuously developed, and a
researcher sees very different results depending on which version they
download.  GemStone re-runs the identical hardware-validated evaluation
against each simulator version and quantifies the difference.

Here the "change" is the branch-predictor bug fix: the pre-fix ``ex5_big``
model vs the post-fix variant.  The paper measures the execution-time MPE
swinging from -51 % to +10 % and the energy MAPE improving from 50 % to
18 % — this script regenerates both rows, plus the per-component cycle
breakdown that explains them.

Run:  python examples/validate_simulator_change.py
"""

from repro import GemStone, GemStoneConfig
from repro.core.energy import compare_power_energy
from repro.core.report import text_table
from repro.workloads.suites import validation_workloads

workloads = tuple(validation_workloads()[::3])
config = GemStoneConfig(
    core="A15",
    workloads=workloads,
    power_workloads=workloads,
    trace_instructions=20_000,
    n_workload_clusters=8,
)

before = GemStone(config)                              # pre-fix ex5_big
after = before.with_machine("gem5-ex5-big-fixed")      # post-fix

freq = config.analysis_freq_hz
rows = []
for label, gemstone in (("pre-fix", before), ("post-fix", after)):
    dataset = gemstone.dataset
    # The same power model (built once on hardware data) is applied to both
    # simulator versions — only the performance model changed.
    energy = compare_power_energy(
        dataset, before.application, before.workload_clusters
    )
    rows.append(
        [
            label,
            dataset.gem5_model,
            f"{dataset.time_mape(freq):.1f}%",
            f"{dataset.time_mpe(freq):+.1f}%",
            f"{energy.energy_mape():.1f}%",
        ]
    )

print(
    text_table(
        ["version", "machine", "time MAPE", "time MPE", "energy MAPE"],
        rows,
        title="Section VII: the branch-predictor fix, as GemStone sees it",
    )
)
print()
print("Paper: MPE swings -51% -> +10%; energy MAPE improves 50% -> 18%.")
print()

# Where did the cycles go?  Compare the mean simulated cycle breakdown of
# one pathological workload on both versions.
from repro.sim.cpu import simulate
from repro.workloads.suites import workload_by_name
from repro.workloads.trace import compile_trace

trace = compile_trace(workload_by_name("par-basicmath-rad2deg"), 20_000)
breakdown_rows = []
for label, gemstone in (("pre-fix", before), ("post-fix", after)):
    result = simulate(trace, gemstone.gem5.machine)
    total = sum(result.components.values())
    breakdown_rows.append(
        [label]
        + [f"{result.components[k] / total:.1%}"
           for k in ("base", "branch", "itlb", "icache", "dcache")]
    )
print(
    text_table(
        ["version", "base", "branch", "itlb", "icache", "dcache"],
        breakdown_rows,
        title="Cycle breakdown of par-basicmath-rad2deg on the model",
    )
)
print("\nThe pre-fix model burns most of its cycles on mispredict recovery")
print("and the wrong-path ITLB traffic it causes — the paper's Cluster A.")
