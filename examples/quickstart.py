#!/usr/bin/env python
"""Quickstart: validate a gem5 CPU model against reference hardware.

Runs the complete GemStone flow for the Cortex-A15 cluster — characterise
the hardware platform, run the (pre-bug-fix) ``ex5_big`` gem5 model on the
same workloads, and print the execution-time error analysis plus the key
source-of-error findings.

A reduced workload set and short traces keep this under a minute; drop the
``workloads=``/``trace_instructions=`` overrides to reproduce the paper's
full 45-workload evaluation.

Run:  python examples/quickstart.py
"""

from repro import GemStone, GemStoneConfig
from repro.core.report import render_workload_mpe_figure
from repro.workloads.suites import validation_workloads

# A representative slice of the validation suite (every third workload).
workloads = tuple(validation_workloads()[::3])

gemstone = GemStone(
    GemStoneConfig(
        core="A15",
        workloads=workloads,
        power_workloads=workloads,
        trace_instructions=20_000,
        n_workload_clusters=8,
    )
)

# --- Execution-time accuracy (the Section IV headline) ---------------------
dataset = gemstone.dataset
print("Execution-time error of the gem5 ex5_big model vs hardware:")
for freq in dataset.frequencies:
    print(
        f"  {freq / 1e6:>6.0f} MHz: MAPE {dataset.time_mape(freq):5.1f}%  "
        f"MPE {dataset.time_mpe(freq):+6.1f}%"
    )
print(
    "  (negative MPE = the model overestimates execution time, "
    "as the paper finds for the pre-fix A15 model)\n"
)

# --- Fig. 3: workload clusters and their errors ----------------------------
print(render_workload_mpe_figure(gemstone.workload_clusters))
print()

# --- Source-of-error identification -----------------------------------------
correlation = gemstone.pmc_correlation
print("Strongest HW-PMC correlations with the time error (Fig. 5):")
for name, corr, cluster in correlation.strongest(6):
    print(f"  {name:<28s} r={corr:+.2f}  (event cluster {cluster})")
print()

regression = gemstone.regression("hw")
print(
    f"Stepwise error regression (Section IV-D): R^2={regression.r2:.3f} "
    f"from {len(regression.selected)} events:"
)
for name in regression.selected:
    print(f"  {name}")
print()

# --- Branch predictor: the key source of error ------------------------------
hw_acc, gem5_acc = gemstone.event_comparison.mean_bp_accuracy()
extreme = gemstone.event_comparison.extreme_bp_workload()
print(
    f"Branch predictor accuracy: hardware {hw_acc:.1%} vs model {gem5_acc:.1%}"
)
print(
    f"Most inverted workload: {extreme.workload} "
    f"(hardware {extreme.hw_accuracy:.2%}, model {extreme.gem5_accuracy:.2%})"
)
