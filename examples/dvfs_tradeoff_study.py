#!/usr/bin/env python
"""A big.LITTLE DVFS trade-off study — and how model errors distort it.

Section VI's closing point: studies that trade off DVFS levels, or the
'little' against the 'big' cluster, inherit the performance model's errors.
This script runs the same energy-vs-performance sweep twice — once on the
hardware reference and once through the (pre-fix) gem5 models — and shows
where the conclusions would diverge.

Run:  python examples/dvfs_tradeoff_study.py
"""

from repro import GemStone, GemStoneConfig
from repro.core.energy import big_little_scaling
from repro.core.report import render_dvfs_figure, text_table
from repro.workloads.suites import validation_workloads

workloads = tuple(validation_workloads()[::3])


def make(core: str) -> GemStone:
    return GemStone(
        GemStoneConfig(
            core=core,
            workloads=workloads,
            power_workloads=workloads,
            trace_instructions=20_000,
            n_workload_clusters=8,
        )
    )


big = make("A15")
little = make("A7")

# --- DVFS scaling within the big cluster (Fig. 8) ---------------------------
print(render_dvfs_figure(big.dvfs))
print()

top = max(big.dataset.frequencies)
hw = big.dvfs.speedup_stats(top, "hw")
model = big.dvfs.speedup_stats(top, "gem5")
print(
    f"A15 speedup at {top / 1e6:.0f} MHz: hardware {hw['mean']:.2f}x "
    f"(range {hw['min']:.2f}-{hw['max']:.2f}), "
    f"model {model['mean']:.2f}x (range {model['min']:.2f}-{model['max']:.2f})"
)
print(
    "The model scales better and compresses workload diversity — its DRAM\n"
    "latency is too low, so everything looks CPU-bound.\n"
)

# --- Energy cost of frequency ------------------------------------------------
rows = []
for freq in big.dataset.frequencies:
    hw_e = big.dvfs.energy_stats(freq, "hw")
    model_e = big.dvfs.energy_stats(freq, "gem5")
    rows.append(
        [f"{freq / 1e6:.0f} MHz", f"{hw_e['mean']:.2f}x", f"{model_e['mean']:.2f}x"]
    )
print(
    text_table(
        ["A15 OPP", "HW energy", "model energy"],
        rows,
        title="Energy per run, normalised to the lowest OPP",
    )
)
print()

# --- big vs LITTLE -----------------------------------------------------------
comparison = big_little_scaling(little.dataset, big.dataset)
rows = []
for freq in sorted(comparison.relative_performance["hw"]):
    rows.append(
        [
            f"A15 @ {freq / 1e6:.0f} MHz",
            f"{comparison.relative_performance['hw'][freq]:.1f}x",
            f"{comparison.relative_performance['gem5'][freq]:.1f}x",
        ]
    )
print(
    text_table(
        ["operating point", "HW", "model"],
        rows,
        title=(
            "A15 performance relative to the A7 at its base OPP "
            "(big.LITTLE trade-off)"
        ),
    )
)
deficit = comparison.a15_deficit()
print(
    f"\nThe model under-rates the A15 by {deficit:.2f}x on average — a "
    "scheduler study run on the buggy model would migrate work to the "
    "little cluster too eagerly."
)
