#!/usr/bin/env python
"""Iteratively repairing a gem5 model, most-significant error first.

Section IV-F: "There is interaction between the components of the model ...
It is also necessary to address the most significant sources of error first,
otherwise changes to other parts of the system may not show a representative
difference."

This script hands GemStone's improvement loop the documented ex5_big
specification errors as candidate fixes and lets it repair the model
greedily, re-evaluating the full system after every change.  Watch two
paper findings appear in the audit trail:

* the branch predictor is accepted first and buys the bulk of the accuracy;
* fixes that are individually correct get *rejected* while a bigger error
  masks them, then accepted in later rounds.

Run:  python examples/iterative_model_improvement.py
"""

from repro.core.improvement import iterative_improvement, standard_fixes
from repro.sim.machine import gem5_ex5_big, hardware_a15
from repro.workloads.suites import validation_workloads

hw = hardware_a15()
workloads = validation_workloads()[::2]  # every other workload, for speed

print(f"Improving {gem5_ex5_big().name} against {hw.name} "
      f"on {len(workloads)} workloads...\n")

result = iterative_improvement(
    hw,
    gem5_ex5_big(),
    workloads,
    standard_fixes(hw),
    trace_instructions=20_000,
    min_improvement=0.5,
)

print(result.summary())
print()
print(f"MAPE {result.initial_mape:.1f}% -> {result.final_mape:.1f}% after "
      f"{len(result.steps)} repair(s).")
print(f"Final model: {result.final_machine.describe()}")
